"""Findings, rule metadata and the suppression-comment syntax.

Every rule in the analyzer has a stable kebab-case id, a severity and a
fix hint; every finding it emits carries the file, line, rule id and a
message specific to the flagged code. Findings order by (file, line,
rule) so analyzer output is deterministic.

Suppressions
------------

A finding can be silenced at the source line (or the line directly
above it) with::

    risky_call()  # ifc: allow[rule-id] -- why this is safe here

or for a whole file — reserved for seed reference modules that
intentionally embody the pre-SafeWeb semantics (benchmark ablations,
the executable seed specs)::

    # ifc: allow-file[rule-id] -- reason

``allow[*]`` / ``allow-file[*]`` match every rule. The reason text
after ``--`` is optional but the analyzer's self-check test treats a
bare suppression in ``src/`` as a smell; give one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Tuple


class Severity:
    """Finding severities (plain strings so findings serialize cleanly)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One analyzer finding, anchored to a source line."""

    path: str  #: repo-relative path of the flagged file
    line: int  #: 1-indexed source line
    rule: str  #: stable rule id, e.g. ``ifc-sql-concat``
    severity: str = field(compare=False)
    message: str = field(compare=False)
    fix_hint: str = field(compare=False, default="")

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.rule}] {self.severity}: "
            f"{self.message}"
            + (f"\n    fix: {self.fix_hint}" if self.fix_hint else "")
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


@dataclass(frozen=True)
class RuleInfo:
    """Catalogue entry for one rule (docs/ANALYSIS.md mirrors this)."""

    rule: str
    severity: str
    summary: str
    fix_hint: str


#: The rule catalogue. Ids are stable; tests and suppressions key on them.
RULES: Dict[str, RuleInfo] = {
    info.rule: info
    for info in (
        # -- IFC lint rules -------------------------------------------------
        RuleInfo(
            "ifc-label-internals",
            Severity.ERROR,
            "Label/LabelSet internals touched outside core/labels.py: "
            "mutating _labels / intern tables or constructing through the "
            "non-interning private APIs breaks identity equality and every "
            "memoized IFC operator built on it.",
            "construct labels through conf_label/int_label/parse_label and "
            "label sets through LabelSet()/LabelSet.of/add/remove/combine.",
        ),
        RuleInfo(
            "ifc-raw-json",
            Severity.ERROR,
            "raw json.dumps/json.loads applied to a labelled document: the "
            "stdlib codec silently strips label sidecars and user taint.",
            "use repro.taint.json_codec.dumps/loads/encode_document, which "
            "carry the labels through serialisation.",
        ),
        RuleInfo(
            "ifc-jail-io",
            Severity.ERROR,
            "direct file/socket/process I/O inside an event-unit callback: "
            "the isolation jail denies it at runtime; statically it is an "
            "unlabelled side channel out of the engine.",
            "move I/O behind a privileged unit or the labelled store; units "
            "communicate only through labelled events and the store.",
        ),
        RuleInfo(
            "ifc-sql-concat",
            Severity.ERROR,
            "SQL assembled by string concatenation/formatting around dynamic "
            "values, bypassing sql_quote(): the classic injection shape.",
            "use parameterised queries (webdb style) or wrap every dynamic "
            "part in repro.taint.sanitize.sql_quote().",
        ),
        RuleInfo(
            "ifc-route-hook-bypass",
            Severity.ERROR,
            "route wired around the framework's enforcement hooks: adding "
            "paths to the middleware's public set or swapping a route "
            "handler in place skips the after-hook response label check.",
            "register routes through SafeWebApp decorators and keep them "
            "inside the authenticated filter chain.",
        ),
        RuleInfo(
            "ifc-checks-disabled",
            Severity.ERROR,
            "an enforcement switch (check_labels/check_taint/csrf_protect/"
            "label_events/isolation/label_checks_in_broker) is turned off "
            "outside tests/.",
            "never disable enforcement in production code; the ablation "
            "benchmarks that must are file-suppressed with a reason.",
        ),
        RuleInfo(
            "ifc-label-drop",
            Severity.ERROR,
            "publish() drops labels (remove_all=True or an explicit remove "
            "list): declassification needs privilege and review — flagged "
            "so every such site is an audited, deliberate decision.",
            "prefer publishing under the ambient labels; when declassifying, "
            "suppress this finding at the site with the justification.",
        ),
        RuleInfo(
            "ifc-unfiltered-read",
            Severity.ERROR,
            "a request handler queries a document view without a key or "
            "clearance filter (or dumps all_docs()): every principal's "
            "documents come back and only the response-time label check "
            "stands between them and the client.",
            "pass key=/keys= scoped to the authenticated principal, or "
            "view(clearance=...) to pre-filter by the requester's clearance.",
        ),
        RuleInfo(
            "ifc-unlabeled-publish",
            Severity.ERROR,
            "a web handler publishes an event whose attributes derive from "
            "labelled store reads: external ingress trusts declared labels, "
            "so the store's labels are dropped at the web/event boundary.",
            "publish from a unit (ambient labels combine automatically) or "
            "attach the source document's labels explicitly.",
        ),
        # -- taint source→sink summaries ------------------------------------
        RuleInfo(
            "taint-html-response",
            Severity.ERROR,
            "user input flows into an HTML response by raw string assembly "
            "without html_escape(): reflected/stored XSS.",
            "wrap the value in repro.taint.sanitize.html_escape() or render "
            "through the template registry (which escapes).",
        ),
        RuleInfo(
            "taint-sql-exec",
            Severity.ERROR,
            "user input flows into execute() without sql_quote() or a "
            "parameterised placeholder: SQL injection.",
            "use parameterised queries; sql_quote() only for the paper's "
            "string-assembly paths.",
        ),
        RuleInfo(
            "taint-store-write",
            Severity.ERROR,
            "unsanitised user input is persisted (store write or shared "
            "collection) and will reach a renderer later: stored XSS shape.",
            "html_escape()/validate before persisting, or endorse_user_input "
            "after an allow-list check.",
        ),
        RuleInfo(
            "taint-identity-override",
            Severity.ERROR,
            "a request parameter overrides the authenticated identity "
            "(params mixed with request.user.* as a fallback) before a "
            "store read: parameter tampering.",
            "derive the scope from request.user only; never let the query "
            "string pick whose data to fetch.",
        ),
        # -- lock-order race detector ---------------------------------------
        RuleInfo(
            "lock-cycle",
            Severity.ERROR,
            "the static lock-acquisition graph contains a cycle: two code "
            "paths take these locks in opposite orders and can deadlock.",
            "impose one global order (coarse to fine) and release before "
            "acquiring a peer lock.",
        ),
        RuleInfo(
            "lock-order",
            Severity.ERROR,
            "a coarser lock is acquired while a finer one is held, "
            "inverting the configured hierarchy for its subsystem.",
            "restructure so registry/store locks are taken before (or "
            "released ahead of) leaf locks; see LOCK_HIERARCHY in "
            "repro/analysis/locks.py.",
        ),
    )
}


_SUPPRESS_RE = re.compile(
    r"#\s*ifc:\s*(?P<scope>allow|allow-file)\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*))?"
)


def parse_suppressions(
    source: str,
) -> Tuple[Mapping[int, FrozenSet[str]], FrozenSet[str]]:
    """Extract suppression comments from *source*.

    Returns ``(line_suppressions, file_suppressions)``: a mapping of
    1-indexed line number to the rule ids silenced on that line, and the
    set of rule ids silenced for the whole file. A line suppression
    covers its own line and the line below it, so it can sit on the
    statement itself or on a comment line directly above.
    """
    by_line: Dict[int, set] = {}
    file_wide: set = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        if not rules:
            continue
        if match.group("scope") == "allow-file":
            file_wide |= rules
        else:
            by_line.setdefault(lineno, set()).update(rules)
            by_line.setdefault(lineno + 1, set()).update(rules)
    return (
        {line: frozenset(rules) for line, rules in by_line.items()},
        frozenset(file_wide),
    )


def is_suppressed(
    finding: Finding,
    line_suppressions: Mapping[int, FrozenSet[str]],
    file_suppressions: FrozenSet[str],
) -> bool:
    if "*" in file_suppressions or finding.rule in file_suppressions:
        return True
    rules = line_suppressions.get(finding.line, frozenset())
    return "*" in rules or finding.rule in rules
