"""Pass 3 — the lock-order race detector.

Builds a static **lock-acquisition graph** over every ``threading.Lock``
/ ``RLock`` / ``Condition`` the tree creates: nodes are canonical lock
names (``Class.attr``, ``module.NAME`` for module-level locks, and
``Class.attr[*]`` for per-key lock dictionaries like the cluster
router's per-principal locks); an edge ``A → B`` means some code path
acquires ``B`` while holding ``A``.

Acquisitions are recognised from ``with`` statements (the tree's only
idiom) plus a **one-level call summary**: a call made under a held lock
contributes edges to every lock the callee acquires directly. Callees
resolve through ``self.method``, module-level functions, and a light
field/variable type inference (``self._lanes[name] = ExecutionLane(...)``
types ``lane.condition``; ``lock = self._unit_lock(p)`` resolves through
the method's lock-return summary). Calls that cannot be resolved —
opaque unit callbacks in particular — contribute nothing, which is
deliberate: the jail, not the lock graph, is the contract at that
boundary.

Two rules come out of the graph:

* ``lock-cycle`` — a strongly-connected component: two paths take the
  same locks in opposite orders and can deadlock;
* ``lock-order`` — an edge that inverts :data:`LOCK_HIERARCHY`, the
  configured coarse→fine order for each concurrent subsystem.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding, RULES
from repro.analysis.framework import ModuleSource, Project

#: The sanctioned coarse→fine acquisition order per subsystem (rank 0 is
#: the coarsest — the lock legitimately held the longest / taken first).
#: An edge from a higher rank to a lower rank in the same group is a
#: ``lock-order`` finding.
LOCK_HIERARCHY: Dict[str, Dict[str, int]] = {
    "storage": {
        "DocumentStore._lock": 0,
        "Database._lock": 1,
        "SequenceAllocator._lock": 2,
    },
    "lanes": {
        "LaneScheduler._lanes_lock": 0,
        "ExecutionLane.condition": 1,
        "LaneScheduler._idle": 2,
        "EngineStats._lock": 3,
    },
    "cluster": {
        "ClusterRouter._unit_locks[*]": 0,
        "ClusterRouter._bridge_lock": 1,
        "ClusterRouter._dlq_lock": 2,
    },
}

_LOCK_FACTORIES = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
}


#: Method names shared with builtin containers / threading primitives —
#: excluded from the unique-method callee fallback (a ``deque.append``
#: must never resolve to a project class that also defines ``append``).
_BUILTIN_METHODS = (
    frozenset(dir(list))
    | frozenset(dir(dict))
    | frozenset(dir(set))
    | frozenset(dir(str))
    | frozenset(dir(bytes))
    | frozenset(
        {
            "popleft",
            "appendleft",
            "put",
            "get_nowait",
            "put_nowait",
            "qsize",
            "task_done",
            "wait",
            "wait_for",
            "notify",
            "notify_all",
            "acquire",
            "release",
            "locked",
            "start",
            "run",
            "is_alive",
            "cancel",
            "close",
            "flush",
            "write",
            "read",
            "readline",
        }
    )
)


def _lock_kind(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Call):
        return _LOCK_FACTORIES.get(dotted_name(node.func) or "")
    return None


def _annotation_class(annotation: Optional[ast.expr]) -> Optional[str]:
    """The class named by a simple annotation (Name, Attribute tail)."""
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip().split(".")[-1] or None
    return None


def _constructed_class(value: ast.expr) -> Optional[str]:
    """The class constructed by *value* (``C(...)``, either IfExp branch)."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id
    if isinstance(value, ast.IfExp):
        return _constructed_class(value.body) or _constructed_class(value.orelse)
    return None


@dataclass(frozen=True)
class LockNode:
    """One canonical lock in the graph."""

    name: str  #: ``Class.attr`` / ``module.NAME`` / ``Class.attr[*]``
    kind: str  #: lock / rlock / condition
    path: str  #: module that creates it
    line: int

    @property
    def is_family(self) -> bool:
        return self.name.endswith("[*]")


@dataclass(frozen=True)
class Site:
    path: str
    line: int
    function: str


@dataclass
class LockGraph:
    """Nodes, ordered edges and the analyses the rules run over them."""

    nodes: Dict[str, LockNode] = field(default_factory=dict)
    edges: Dict[Tuple[str, str], List[Site]] = field(default_factory=dict)

    def add_edge(self, held: str, acquired: str, site: Site) -> None:
        if held == acquired:
            # Re-entry on the same lock is the RLock rule's business (the
            # runtime's), not an ordering fact.
            return
        self.edges.setdefault((held, acquired), []).append(site)

    def successors(self, name: str) -> Set[str]:
        return {dst for (src, dst) in self.edges if src == name}

    def cycles(self) -> List[List[str]]:
        """Strongly-connected components of size > 1 (plus self-loops)."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        components: List[List[str]] = []

        def strongconnect(v: str) -> None:
            index[v] = lowlink[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in self.successors(v):
                if w not in index:
                    strongconnect(w)
                    lowlink[v] = min(lowlink[v], lowlink[w])
                elif w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if lowlink[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

        for name in sorted(set(self.nodes) | {n for e in self.edges for n in e}):
            if name not in index:
                strongconnect(name)
        return components

    def order_violations(
        self, hierarchy: Mapping[str, Mapping[str, int]] = LOCK_HIERARCHY
    ) -> List[Tuple[str, Tuple[str, str], List[Site]]]:
        """Edges that go finer → coarser within one hierarchy group."""
        violations = []
        for group, ranks in hierarchy.items():
            for (src, dst), sites in sorted(self.edges.items()):
                if src in ranks and dst in ranks and ranks[src] > ranks[dst]:
                    violations.append((group, (src, dst), sites))
        return violations

    def to_dot(self) -> str:
        """GraphViz rendering (``scripts/analyze.py --lock-graph``)."""
        lines = ["digraph locks {"]
        for name in sorted(self.nodes):
            lines.append(f'  "{name}" [shape=box];')
        for (src, dst), sites in sorted(self.edges.items()):
            site = sites[0]
            lines.append(
                f'  "{src}" -> "{dst}" [label="{site.path}:{site.line}"];'
            )
        lines.append("}")
        return "\n".join(lines)


# -- registry: find every lock the tree creates ----------------------------------


@dataclass
class _ClassInfo:
    name: str
    locks: Dict[str, LockNode] = field(default_factory=dict)  #: attr → node
    families: Dict[str, LockNode] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)  #: attr → class
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)


@dataclass
class _Registry:
    classes: Dict[str, _ClassInfo] = field(default_factory=dict)
    module_locks: Dict[Tuple[str, str], LockNode] = field(default_factory=dict)
    #: attr name → owning classes (for resolving foreign ``obj._lock``)
    attr_owners: Dict[str, List[str]] = field(default_factory=dict)
    #: method name → defining classes (for unique-method callee fallback)
    method_owners: Dict[str, List[str]] = field(default_factory=dict)

    def unique_owner(self, attr: str) -> Optional[_ClassInfo]:
        owners = self.attr_owners.get(attr, [])
        if len(owners) == 1:
            return self.classes[owners[0]]
        return None

    def unique_method_owner(self, method: str) -> Optional[_ClassInfo]:
        if method in _BUILTIN_METHODS:
            # list.append / dict.get / Condition.wait … would resolve to
            # whatever project class happens to share the name.
            return None
        owners = self.method_owners.get(method, [])
        if len(owners) == 1:
            return self.classes[owners[0]]
        return None


def _build_registry(project: Project) -> _Registry:
    registry = _Registry()
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                info = registry.classes.setdefault(node.name, _ClassInfo(node.name))
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        info.methods[item.name] = item
                # Annotated constructor params type the fields they're
                # stored into (``self._stats = stats`` with
                # ``stats: EngineStats``).
                param_types: Dict[str, str] = {}
                init = info.methods.get("__init__")
                if init is not None:
                    for arg in init.args.args + init.args.kwonlyargs:
                        ann = _annotation_class(arg.annotation)
                        if ann is not None:
                            param_types[arg.arg] = ann
                for sub in ast.walk(node):
                    if not isinstance(sub, ast.Assign):
                        continue
                    kind = _lock_kind(sub.value)
                    for target in sub.targets:
                        name = dotted_name(target)
                        if kind and name and name.startswith("self."):
                            attr = name[5:]
                            if "." in attr:
                                continue
                            info.locks[attr] = LockNode(
                                f"{node.name}.{attr}", kind, module.rel, sub.lineno
                            )
                        elif (
                            kind
                            and isinstance(target, ast.Subscript)
                            and (base := dotted_name(target.value))
                            and base.startswith("self.")
                        ):
                            attr = base[5:]
                            info.families[attr] = LockNode(
                                f"{node.name}.{attr}[*]", kind, module.rel, sub.lineno
                            )
                        elif name and name.startswith("self.") and "." not in name[5:]:
                            inferred = _constructed_class(sub.value)
                            if inferred is None and isinstance(sub.value, ast.Name):
                                inferred = param_types.get(sub.value.id)
                            if inferred is not None:
                                info.attr_types[name[5:]] = inferred
            elif isinstance(node, ast.Assign) and node in module.tree.body:
                kind = _lock_kind(node.value)
                if kind:
                    stem = module.rel.rsplit("/", 1)[-1].removesuffix(".py")
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            registry.module_locks[(module.rel, target.id)] = LockNode(
                                f"{stem}.{target.id}", kind, module.rel, node.lineno
                            )
    for info in registry.classes.values():
        for attr in list(info.locks) + list(info.families):
            registry.attr_owners.setdefault(attr, []).append(info.name)
        for method in info.methods:
            registry.method_owners.setdefault(method, []).append(info.name)
    return registry


# -- resolution ------------------------------------------------------------------


@dataclass
class _Ctx:
    module: ModuleSource
    registry: _Registry
    cls: Optional[_ClassInfo]
    env: Dict[str, str] = field(default_factory=dict)  #: var → lock node name
    var_types: Dict[str, str] = field(default_factory=dict)  #: var → class name

    def child(self) -> "_Ctx":
        return _Ctx(
            self.module,
            self.registry,
            self.cls,
            dict(self.env),
            dict(self.var_types),
        )


def _resolve_lock(
    expr: ast.expr, ctx: _Ctx, seen: FrozenSet[int] = frozenset()
) -> Optional[str]:
    """The canonical lock node *expr* evaluates to, if inferable."""
    if isinstance(expr, ast.Name):
        bound = ctx.env.get(expr.id)
        if bound is not None:
            return bound
        module_lock = ctx.registry.module_locks.get((ctx.module.rel, expr.id))
        return module_lock.name if module_lock else None
    if isinstance(expr, ast.Attribute):
        owner = _resolve_owner(expr.value, ctx)
        if owner is not None:
            node = owner.locks.get(expr.attr)
            if node is not None:
                return node.name
        if owner is None:
            # foreign object: only an attr with a unique owner resolves
            unique = ctx.registry.unique_owner(expr.attr)
            if unique is not None and expr.attr in unique.locks:
                return unique.locks[expr.attr].name
        return None
    if isinstance(expr, ast.Subscript):
        family = _resolve_family(expr.value, ctx)
        return family.name if family else None
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Attribute) and expr.func.attr in ("get", "setdefault"):
            family = _resolve_family(expr.func.value, ctx)
            if family is not None:
                return family.name
        method = _resolve_callee(expr.func, ctx)
        if method is not None:
            owner, func = method
            if id(func) not in seen:
                return _lock_return_summary(func, owner, ctx, seen | {id(func)})
    return None


def _resolve_owner(expr: ast.expr, ctx: _Ctx) -> Optional[_ClassInfo]:
    """The class that owns *expr* (``self``, typed fields, typed vars)."""
    if isinstance(expr, ast.Name):
        if expr.id == "self":
            return ctx.cls
        type_name = ctx.var_types.get(expr.id)
        return ctx.registry.classes.get(type_name) if type_name else None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id == "self" and ctx.cls is not None:
            type_name = ctx.cls.attr_types.get(expr.attr)
            return ctx.registry.classes.get(type_name) if type_name else None
    return None


def _resolve_family(expr: ast.expr, ctx: _Ctx) -> Optional[LockNode]:
    if isinstance(expr, ast.Attribute):
        owner = _resolve_owner(expr.value, ctx)
        if owner is not None:
            return owner.families.get(expr.attr)
        unique = ctx.registry.unique_owner(expr.attr)
        if unique is not None:
            return unique.families.get(expr.attr)
    return None


def _resolve_callee(
    func: ast.expr, ctx: _Ctx
) -> Optional[Tuple[Optional[_ClassInfo], ast.FunctionDef]]:
    """(owning class, FunctionDef) for self.m(), typed obj.m(), local f()."""
    if isinstance(func, ast.Attribute):
        owner = _resolve_owner(func.value, ctx)
        if owner is not None and func.attr in owner.methods:
            return owner, owner.methods[func.attr]
        if owner is None:
            # Fallback: a method name defined by exactly one class in the
            # project resolves there. Widely-shared names (get, publish,
            # callback surfaces) stay opaque — deliberately, so jailed
            # callbacks contribute no speculative edges.
            unique = ctx.registry.unique_method_owner(func.attr)
            if unique is not None:
                return unique, unique.methods[func.attr]
        return None
    if isinstance(func, ast.Name):
        for node in ctx.module.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == func.id:
                return None, node
    return None


def _lock_return_summary(
    func: ast.FunctionDef,
    owner: Optional[_ClassInfo],
    ctx: _Ctx,
    seen: FrozenSet[int] = frozenset(),
) -> Optional[str]:
    """The lock node a method returns, tracked through local variables."""
    sub = _Ctx(ctx.module, ctx.registry, owner, {}, {})
    result: Optional[str] = None
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            resolved = _resolve_lock(node.value, sub, seen)
            if resolved is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        sub.env[target.id] = resolved
                    elif isinstance(target, ast.Subscript):
                        family = _resolve_family(target.value, sub)
                        if family is not None:
                            # lock = self._locks[k] = threading.Lock()
                            for other in node.targets:
                                if isinstance(other, ast.Name):
                                    sub.env[other.id] = family.name
            elif _lock_kind(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        family = _resolve_family(target.value, sub)
                        if family is not None:
                            for other in node.targets:
                                if isinstance(other, ast.Name):
                                    sub.env[other.id] = family.name
        elif isinstance(node, ast.Return) and node.value is not None:
            resolved = _resolve_lock(node.value, sub, seen)
            if resolved is not None:
                result = resolved
    return result


# -- acquisition walk ------------------------------------------------------------


class _GraphBuilder:
    def __init__(self, project: Project, registry: _Registry) -> None:
        self.project = project
        self.registry = registry
        self.graph = LockGraph()
        #: id(FunctionDef) → lock nodes it acquires directly (for the
        #: one-level call summary).
        self.direct_acquires: Dict[int, Set[str]] = {}
        for info in registry.classes.values():
            for node in list(info.locks.values()) + list(info.families.values()):
                self.graph.nodes[node.name] = node
        for node in registry.module_locks.values():
            self.graph.nodes[node.name] = node

    # Pass A: per-function direct acquisition sets.
    def collect(self) -> None:
        for module, cls, func in self._functions():
            ctx = _Ctx(module, self.registry, cls)
            acquired: Set[str] = set()
            self._walk(func.body, ctx, [], func, record=acquired, edges=False)
            self.direct_acquires[id(func)] = acquired

    # Pass B: edges (with one-level call summaries available).
    def build(self) -> LockGraph:
        self.collect()
        for module, cls, func in self._functions():
            ctx = _Ctx(module, self.registry, cls)
            self._walk(func.body, ctx, [], func, record=None, edges=True)
        return self.graph

    def _functions(
        self,
    ) -> Iterator[Tuple[ModuleSource, Optional[_ClassInfo], ast.FunctionDef]]:
        for module in self.project.modules:
            for node in module.tree.body:
                if isinstance(node, ast.FunctionDef):
                    yield module, None, node
                elif isinstance(node, ast.ClassDef):
                    info = self.registry.classes.get(node.name)
                    for item in node.body:
                        if isinstance(item, ast.FunctionDef):
                            yield module, info, item

    # -- the walker --------------------------------------------------------------

    def _walk(
        self,
        statements: Sequence[ast.stmt],
        ctx: _Ctx,
        held: List[str],
        func: ast.FunctionDef,
        record: Optional[Set[str]],
        edges: bool,
    ) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested function (delivery wrappers): analyze with the
                # enclosing environment so closure-captured locks resolve,
                # starting from an empty held set — it runs later.
                nested_ctx = ctx.child()
                nested_record = set()
                self._walk(
                    statement.body, nested_ctx, [], statement,
                    record=nested_record, edges=edges,
                )
                if record is not None:
                    self.direct_acquires[id(statement)] = nested_record
                continue
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                ann = _annotation_class(statement.annotation)
                if ann is not None:
                    ctx.var_types[statement.target.id] = ann
            if isinstance(statement, ast.Assign):
                resolved = _resolve_lock(statement.value, ctx)
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        if resolved is not None:
                            ctx.env[target.id] = resolved
                        elif (
                            isinstance(statement.value, ast.Call)
                            and isinstance(statement.value.func, ast.Name)
                            and statement.value.func.id in self.registry.classes
                        ):
                            ctx.var_types[target.id] = statement.value.func.id
                        else:
                            ctx.env.pop(target.id, None)
                            ctx.var_types.pop(target.id, None)
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                acquired_here: List[str] = []
                for item in statement.items:
                    node_name = _resolve_lock(item.context_expr, ctx)
                    if node_name is not None:
                        if record is not None:
                            record.add(node_name)
                        if edges:
                            site = Site(
                                ctx.module.rel, statement.lineno, func.name
                            )
                            for held_name in held + acquired_here:
                                self.graph.add_edge(held_name, node_name, site)
                        acquired_here.append(node_name)
                self._walk(
                    statement.body, ctx, held + acquired_here, func, record, edges
                )
                continue
            # Call summaries: calls made while holding a lock pull in the
            # callee's direct acquisitions (one level).
            if edges and held:
                for sub in ast.walk(statement):
                    if isinstance(sub, ast.Call):
                        callee = _resolve_callee(sub.func, ctx)
                        if callee is None:
                            continue
                        _owner, callee_func = callee
                        for acquired in self.direct_acquires.get(
                            id(callee_func), ()
                        ):
                            site = Site(ctx.module.rel, sub.lineno, func.name)
                            for held_name in held:
                                self.graph.add_edge(held_name, acquired, site)
            for body in _statement_bodies(statement):
                self._walk(body, ctx, held, func, record, edges)


def _statement_bodies(statement: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        body = getattr(statement, attr, None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            yield body
    for handler in getattr(statement, "handlers", []):
        yield handler.body


def build_lock_graph(project: Project) -> LockGraph:
    """The full static acquisition graph for *project*."""
    registry = _build_registry(project)
    return _GraphBuilder(project, registry).build()


def run_lock_rules(project: Project) -> List[Finding]:
    graph = build_lock_graph(project)
    findings: List[Finding] = []
    for component in graph.cycles():
        sites = []
        for (src, dst), edge_sites in sorted(graph.edges.items()):
            if src in component and dst in component:
                sites.extend(edge_sites)
        site = sites[0] if sites else Site("<graph>", 1, "<module>")
        info = RULES["lock-cycle"]
        findings.append(
            Finding(
                path=site.path,
                line=site.line,
                rule="lock-cycle",
                severity=info.severity,
                message=(
                    "lock acquisition cycle: " + " ↔ ".join(component)
                ),
                fix_hint=info.fix_hint,
            )
        )
    info = RULES["lock-order"]
    for group, (src, dst), sites in graph.order_violations():
        site = sites[0]
        findings.append(
            Finding(
                path=site.path,
                line=site.line,
                rule="lock-order",
                severity=info.severity,
                message=(
                    f"'{dst}' (coarser) acquired while holding '{src}' "
                    f"(finer) — inverts the {group} hierarchy"
                ),
                fix_hint=info.fix_hint,
            )
        )
    return findings
