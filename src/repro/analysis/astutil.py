"""Small AST helpers shared by the analyzer passes."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The dotted name a call targets (``obj.method`` / ``func``)."""
    return dotted_name(call.func)


def call_attr(call: ast.Call) -> Optional[str]:
    """The final attribute of a method call (``view`` for ``db.view(...)``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_const(node: Optional[ast.AST], value: object) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name → imported dotted module/object for top-level imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.FunctionDef, Optional[ast.ClassDef]]]:
    """Every function/method in the module with its enclosing class.

    Nested functions are yielded too (with the class of the outermost
    enclosing method, if any) — handlers are routinely defined inside
    builder functions.
    """

    def walk(node: ast.AST, cls: Optional[ast.ClassDef]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from walk(child, cls)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)


def arg_names(func: ast.FunctionDef) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def contains_chain_rooted_at(node: ast.AST, root: str, attrs: Tuple[str, ...]) -> bool:
    """True when *node* contains ``<root>.<attr>...`` for any listed attr."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in attrs:
            base = sub.value
            if isinstance(base, ast.Name) and base.id == root:
                return True
    return False


def assigned_names(target: ast.expr) -> List[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(assigned_names(element))
        return names
    if isinstance(target, ast.Starred):
        return assigned_names(target.value)
    return []
