"""Pass 1 — syntactic IFC lint rules.

These rules machine-check the internal contracts the fast paths of PRs
1–9 rely on (interned labels, jail discipline, hook-guarded routes) and
the classic injection shapes the §5.2 corpus exercises. Each rule is a
narrow AST pattern; anything needing dataflow lives in
:mod:`repro.analysis.taint`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import (
    call_attr,
    call_name,
    contains_chain_rooted_at,
    dotted_name,
    is_const,
    keyword_arg,
)
from repro.analysis.findings import Finding, RULES
from repro.analysis.framework import ModuleSource, Project

#: Attributes that are Label/LabelSet internals (mutation or even read
#: access outside core/labels.py couples code to the intern machinery).
_LABEL_INTERNALS = ("_labels", "_intern")

#: Private constructors that bypass the interning contract.
_LABEL_PRIVATE_CALLS = (
    "LabelSet._from_frozen",
    "LabelSet._build",
    "Label.__new__",
    "LabelSet.__new__",
)

#: Enforcement switches that must never be disabled outside tests/.
_ENFORCEMENT_FLAGS = (
    "check_labels",
    "check_taint",
    "csrf_protect",
    "label_events",
    "isolation",
    "label_checks_in_broker",
)

#: Direct I/O roots the jail denies inside unit callbacks.
_JAIL_IO_PREFIXES = (
    "socket.",
    "subprocess.",
    "urllib.",
    "requests.",
    "http.client",
)
_JAIL_IO_CALLS = ("open", "os.open", "os.system", "os.popen", "os.fdopen")

_SQL_RE = re.compile(
    r"\b(select\s+.+\s+from\s|insert\s+into\s|update\s+\w+\s+set\s"
    r"|delete\s+from\s|drop\s+table\s|create\s+table\s)",
    re.IGNORECASE | re.DOTALL,
)


def _finding(module: ModuleSource, node: ast.AST, rule: str, message: str) -> Finding:
    info = RULES[rule]
    return Finding(
        path=module.rel,
        line=getattr(node, "lineno", 1),
        rule=rule,
        severity=info.severity,
        message=message,
        fix_hint=info.fix_hint,
    )


# -- ifc-label-internals ---------------------------------------------------------


def _label_internals(module: ModuleSource) -> Iterator[Finding]:
    if module.rel.endswith("core/labels.py"):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and node.attr in _LABEL_INTERNALS:
            verb = (
                "mutates" if isinstance(node.ctx, (ast.Store, ast.Del)) else "reaches into"
            )
            yield _finding(
                module,
                node,
                "ifc-label-internals",
                f"{verb} the label-internal attribute '{node.attr}' outside "
                "core/labels.py",
            )
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name in _LABEL_PRIVATE_CALLS:
                yield _finding(
                    module,
                    node,
                    "ifc-label-internals",
                    f"constructs labels through the non-interning private API "
                    f"{name}()",
                )


# -- ifc-jail-io -----------------------------------------------------------------


def _unit_classes(tree: ast.Module) -> List[ast.ClassDef]:
    classes = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                base_name = dotted_name(base) or ""
                if base_name == "Unit" or base_name.endswith(".Unit"):
                    classes.append(node)
                    break
    return classes


def _handler_methods(cls: ast.ClassDef) -> List[ast.FunctionDef]:
    """Methods that run jailed: subscription handlers of a Unit class."""
    methods = {
        node.name: node for node in cls.body if isinstance(node, ast.FunctionDef)
    }
    handlers: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Call) and call_attr(node) == "subscribe":
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                name = dotted_name(arg) or ""
                if name.startswith("self.") and name[5:] in methods:
                    handlers.add(name[5:])
    for name, method in methods.items():
        args = [a.arg for a in method.args.args]
        if len(args) >= 2 and args[0] == "self" and args[1] == "event":
            handlers.add(name)
    return [methods[name] for name in sorted(handlers)]


def _io_calls(func: ast.FunctionDef) -> Iterator[Tuple[ast.Call, str]]:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node) or ""
        if name in _JAIL_IO_CALLS or any(
            name.startswith(prefix) for prefix in _JAIL_IO_PREFIXES
        ):
            yield node, name


def _jail_io(module: ModuleSource) -> Iterator[Finding]:
    for cls in _unit_classes(module.tree):
        methods = {
            node.name: node for node in cls.body if isinstance(node, ast.FunctionDef)
        }
        for handler in _handler_methods(cls):
            # The handler itself plus same-class helpers it calls directly
            # (one-level summary — mirrors the taint pass's call depth).
            bodies = [handler]
            for node in ast.walk(handler):
                if isinstance(node, ast.Call):
                    name = dotted_name(node.func) or ""
                    if name.startswith("self.") and name[5:] in methods:
                        bodies.append(methods[name[5:]])
            for body in bodies:
                for call, name in _io_calls(body):
                    yield _finding(
                        module,
                        call,
                        "ifc-jail-io",
                        f"unit '{cls.name}' performs {name}() inside jailed "
                        f"callback '{handler.name}'",
                    )


# -- ifc-sql-concat --------------------------------------------------------------


def _flatten_concat(node: ast.expr) -> List[ast.expr]:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _flatten_concat(node.left) + _flatten_concat(node.right)
    return [node]


def _is_sql_literal(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and _SQL_RE.search(node.value) is not None
    )


def _is_quoted(node: ast.expr) -> bool:
    return isinstance(node, ast.Call) and (call_attr(node) == "sql_quote")


def _sql_concat(module: ModuleSource) -> Iterator[Finding]:
    flagged: Set[int] = set()

    def flag(node: ast.AST, how: str):
        if node.lineno not in flagged:
            flagged.add(node.lineno)
            yield _finding(
                module,
                node,
                "ifc-sql-concat",
                f"SQL statement assembled by {how} around unquoted dynamic "
                "values",
            )

    for node in ast.walk(module.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            parts = _flatten_concat(node)
            if any(_is_sql_literal(p) for p in parts) and any(
                not isinstance(p, ast.Constant) and not _is_quoted(p) for p in parts
            ):
                yield from flag(node, "string concatenation")
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            if _is_sql_literal(node.left):
                yield from flag(node, "%-formatting")
        elif isinstance(node, ast.JoinedStr):
            literal = "".join(
                part.value
                for part in node.values
                if isinstance(part, ast.Constant) and isinstance(part.value, str)
            )
            dynamic = [
                part.value
                for part in node.values
                if isinstance(part, ast.FormattedValue)
            ]
            if _SQL_RE.search(literal) and any(not _is_quoted(d) for d in dynamic):
                yield from flag(node, "an f-string")
        elif isinstance(node, ast.Call) and call_attr(node) == "format":
            if isinstance(node.func, ast.Attribute) and _is_sql_literal(node.func.value):
                if any(
                    not _is_quoted(a) for a in list(node.args) + [k.value for k in node.keywords]
                ):
                    yield from flag(node, ".format()")


# -- ifc-route-hook-bypass -------------------------------------------------------


def _hook_bypass_primitives(func_or_module: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(func_or_module):
        if isinstance(node, ast.Attribute) and node.attr == "_public_paths":
            yield node, (
                "adds paths to the middleware's public set, exempting them "
                "from the authenticated filter chain (and its after-hook)"
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == "handler":
                    yield node, (
                        "swaps a route handler in place, around the "
                        "framework's registration (and response-check) path"
                    )


def _route_hook_bypass(module: ModuleSource) -> Iterator[Finding]:
    if module.rel.endswith(("web/middleware.py", "web/routing.py", "web/framework.py")):
        return
    bypassing_functions: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef):
            if any(True for _ in _hook_bypass_primitives(node)):
                bypassing_functions.add(node.name)
    for node, message in _hook_bypass_primitives(module.tree):
        yield _finding(module, node, "ifc-route-hook-bypass", message)
    # One-level call summary: flag call sites of local helpers that bypass.
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in bypassing_functions:
                yield _finding(
                    module,
                    node,
                    "ifc-route-hook-bypass",
                    f"calls {node.func.id}(), which wires a route around the "
                    "enforcement hooks",
                )


# -- ifc-checks-disabled ---------------------------------------------------------


def _checks_disabled(module: ModuleSource) -> Iterator[Finding]:
    if "tests/" in module.rel or module.rel.startswith("tests"):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg in _ENFORCEMENT_FLAGS and is_const(keyword.value, False):
                    yield _finding(
                        module,
                        keyword.value,
                        "ifc-checks-disabled",
                        f"disables the '{keyword.arg}' enforcement switch",
                    )
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value in _ENFORCEMENT_FLAGS
                    and is_const(value, False)
                ):
                    yield _finding(
                        module,
                        value,
                        "ifc-checks-disabled",
                        f"configures the '{key.value}' enforcement switch off",
                    )


# -- ifc-label-drop --------------------------------------------------------------


def _label_drop(module: ModuleSource) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and call_attr(node) == "publish"):
            continue
        remove_all = keyword_arg(node, "remove_all")
        if is_const(remove_all, True):
            yield _finding(
                module,
                node,
                "ifc-label-drop",
                "publish(remove_all=True) strips every ambient label "
                "(declassification of the whole context)",
            )
            continue
        remove = keyword_arg(node, "remove")
        if isinstance(remove, (ast.List, ast.Tuple, ast.Set)) and remove.elts:
            yield _finding(
                module,
                node,
                "ifc-label-drop",
                "publish(remove=[...]) drops labels from the published event",
            )


# -- ifc-unfiltered-read ---------------------------------------------------------


def _request_handlers(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and any(
            arg.arg == "request" for arg in node.args.args
        ):
            yield node


def _unfiltered_read(module: ModuleSource) -> Iterator[Finding]:
    for handler in _request_handlers(module.tree):
        for node in ast.walk(handler):
            if not isinstance(node, ast.Call):
                continue
            attr = call_attr(node)
            if attr == "view" and isinstance(node.func, ast.Attribute):
                kwargs = {keyword.arg for keyword in node.keywords}
                if not kwargs & {"key", "keys", "clearance"}:
                    yield _finding(
                        module,
                        node,
                        "ifc-unfiltered-read",
                        f"handler '{handler.name}' queries a view with no "
                        "key or clearance filter",
                    )
            elif attr == "all_docs" and isinstance(node.func, ast.Attribute):
                yield _finding(
                    module,
                    node,
                    "ifc-unfiltered-read",
                    f"handler '{handler.name}' iterates all_docs() — every "
                    "principal's documents",
                )


# -- taint-identity-override (syntactic: no dataflow needed) ---------------------

_PARAM_ATTRS = ("params", "headers", "query", "form")


def _identity_override(module: ModuleSource) -> Iterator[Finding]:
    for handler in _request_handlers(module.tree):
        for node in ast.walk(handler):
            if isinstance(node, ast.BoolOp):
                values = node.values
            elif isinstance(node, ast.IfExp):
                values = [node.body, node.orelse]
            else:
                continue
            has_param = any(
                contains_chain_rooted_at(v, "request", _PARAM_ATTRS) for v in values
            )
            has_identity = any(
                contains_chain_rooted_at(v, "request", ("user",)) for v in values
            )
            if has_param and has_identity:
                yield _finding(
                    module,
                    node,
                    "taint-identity-override",
                    f"handler '{handler.name}' lets a request parameter "
                    "override the authenticated identity",
                )


_MODULE_RULES = (
    _label_internals,
    _jail_io,
    _sql_concat,
    _route_hook_bypass,
    _checks_disabled,
    _label_drop,
    _unfiltered_read,
    _identity_override,
)


def run_ifc_rules(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        for rule in _MODULE_RULES:
            findings.extend(rule(module))
    return findings
