"""The SQLite web database (paper §5.1, Figure 4, item 6).

Stores everything the web frontend needs that is *not* application data:
user accounts with their label privileges, the Listing-3-style access
control rows (``Privileges.count(:conditions => {:u_id, :hospital,
:clinic})``) and session state. Kept deliberately separate from the
application database so a compromise of web state cannot touch patient
records.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import sqlite3
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.principals import UserPrincipal
from repro.core.privileges import PRIVILEGE_KINDS, PrivilegeSet
from repro.exceptions import SafeWebError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS users (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE,
    salt TEXT NOT NULL,
    digest TEXT NOT NULL,
    mdt TEXT,
    region TEXT,
    is_admin INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS label_privileges (
    id INTEGER PRIMARY KEY,
    u_id INTEGER NOT NULL REFERENCES users(id),
    kind TEXT NOT NULL,
    label TEXT NOT NULL,
    UNIQUE (u_id, kind, label)
);
CREATE TABLE IF NOT EXISTS acl_privileges (
    id INTEGER PRIMARY KEY,
    u_id INTEGER NOT NULL REFERENCES users(id),
    hospital TEXT NOT NULL,
    clinic TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sessions (
    token TEXT PRIMARY KEY,
    u_id INTEGER NOT NULL REFERENCES users(id),
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS config (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


#: PBKDF2 rounds for password storage. Real deployments use far more;
#: this default keeps verification around the cost profile of the
#: paper's HTTP Basic authentication (the dominant Figure 5 component)
#: without making the test suite crawl.
DEFAULT_PASSWORD_ITERATIONS = 20_000


def _digest(salt: str, password: str, iterations: int = DEFAULT_PASSWORD_ITERATIONS) -> str:
    derived = hashlib.pbkdf2_hmac(
        "sha256", password.encode(), salt.encode(), iterations
    )
    return f"pbkdf2${iterations}${derived.hex()}"


def _verify(salt: str, password: str, stored: str) -> bool:
    try:
        _scheme, iterations_text, _hex = stored.split("$", 2)
        iterations = int(iterations_text)
    except ValueError:
        return False
    return hmac.compare_digest(stored, _digest(salt, password, iterations))


class WebDatabase:
    """Thread-safe SQLite-backed store for users, privileges and sessions."""

    def __init__(self, path: str = ":memory:", password_iterations: int = DEFAULT_PASSWORD_ITERATIONS):
        self._lock = threading.RLock()
        self._password_iterations = password_iterations
        self._generation = 0
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        with self._lock:
            self._connection.executescript(_SCHEMA)
            self._connection.commit()

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every user/privilege mutation.

        The frontend's privilege-resolution cache
        (:class:`repro.web.auth.CachingAuthenticator`) keys entries on
        this value, the same generation-based invalidation the broker
        uses for :attr:`repro.core.privileges.PrivilegeSet.generation`:
        a grant or revoke makes every cached principal unreachable, so a
        revoked privilege can never be served from cache.
        """
        with self._lock:
            return self._generation

    def _bump_generation(self) -> None:
        """Callers must hold ``self._lock``."""
        self._generation += 1

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # -- users ---------------------------------------------------------------

    def add_user(
        self,
        name: str,
        password: str,
        mdt: Optional[str] = None,
        region: Optional[str] = None,
        is_admin: bool = False,
    ) -> int:
        salt = secrets.token_hex(8)
        digest = _digest(salt, password, self._password_iterations)
        with self._lock:
            cursor = self._connection.execute(
                "INSERT INTO users (name, salt, digest, mdt, region, is_admin) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (name, salt, digest, mdt, region, int(is_admin)),
            )
            self._bump_generation()
            self._connection.commit()
            return cursor.lastrowid

    def user_id(self, name: str) -> Optional[int]:
        """Case-*sensitive* lookup (SQLite ``=`` on TEXT is binary)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT id FROM users WHERE name = ?", (name,)
            ).fetchone()
        return None if row is None else row["id"]

    def user_id_case_insensitive(self, name: str) -> Optional[int]:
        """The §5.2 "errors in access checks" variant: LOWER() comparison.

        Exists so the vulnerability-injection evaluation can swap the
        correct lookup for this buggy one without editing SQL inline.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT id FROM users WHERE LOWER(name) = LOWER(?) ORDER BY id LIMIT 1",
                (name,),
            ).fetchone()
        return None if row is None else row["id"]

    def check_password(self, name: str, password: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT salt, digest FROM users WHERE name = ?", (name,)
            ).fetchone()
        if row is None:
            return False
        return _verify(row["salt"], password, row["digest"])

    def user_row(self, user_id: int) -> Optional[Dict]:
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM users WHERE id = ?", (user_id,)
            ).fetchone()
        return None if row is None else dict(row)

    def has_users(self) -> bool:
        """True once any user account exists. A file-backed database
        reopened from disk already holds its workload's accounts; callers
        use this to skip re-provisioning (which would violate the UNIQUE
        username constraint)."""
        with self._lock:
            row = self._connection.execute("SELECT 1 FROM users LIMIT 1").fetchone()
        return row is not None

    def user_names(self) -> List[str]:
        with self._lock:
            rows = self._connection.execute("SELECT name FROM users ORDER BY name").fetchall()
        return [row["name"] for row in rows]

    # -- label privileges (IFC) -------------------------------------------------

    def grant_label_privilege(self, user_id: int, kind: str, label_uri: str) -> None:
        if kind not in PRIVILEGE_KINDS:
            raise SafeWebError(f"unknown privilege kind {kind!r}")
        with self._lock:
            self._connection.execute(
                "INSERT OR IGNORE INTO label_privileges (u_id, kind, label) VALUES (?, ?, ?)",
                (user_id, kind, label_uri),
            )
            self._bump_generation()
            self._connection.commit()

    def grant_label_privileges(
        self, user_id: int, grants: Iterable[Tuple[str, str]]
    ) -> None:
        """Batch grant of ``(kind, label_uri)`` pairs: one ``executemany``
        and one commit instead of a transaction per grant (provisioning a
        portal user touches dozens of clearance rows)."""
        rows = []
        for kind, label_uri in grants:
            if kind not in PRIVILEGE_KINDS:
                raise SafeWebError(f"unknown privilege kind {kind!r}")
            rows.append((user_id, kind, label_uri))
        if not rows:
            return
        with self._lock:
            self._connection.executemany(
                "INSERT OR IGNORE INTO label_privileges (u_id, kind, label) VALUES (?, ?, ?)",
                rows,
            )
            self._bump_generation()
            self._connection.commit()

    def revoke_label_privilege(self, user_id: int, kind: str, label_uri: str) -> None:
        with self._lock:
            self._connection.execute(
                "DELETE FROM label_privileges WHERE u_id = ? AND kind = ? AND label = ?",
                (user_id, kind, label_uri),
            )
            self._bump_generation()
            self._connection.commit()

    def privileges_for(self, user_id: int) -> PrivilegeSet:
        with self._lock:
            rows = self._connection.execute(
                "SELECT kind, label FROM label_privileges WHERE u_id = ?", (user_id,)
            ).fetchall()
        grants: Dict[str, List[str]] = {}
        for row in rows:
            grants.setdefault(row["kind"], []).append(row["label"])
        return PrivilegeSet(grants)

    def principal_for(self, name: str) -> Optional[UserPrincipal]:
        """Build a :class:`UserPrincipal` for an authenticated user."""
        user_id = self.user_id(name)
        if user_id is None:
            return None
        row = self.user_row(user_id)
        return UserPrincipal(
            name,
            privileges=self.privileges_for(user_id),
            password_salt=row["salt"],
            password_digest=row["digest"],
            mdt_id=row["mdt"],
            region=row["region"],
        )

    def is_admin(self, user_id: int) -> bool:
        row = self.user_row(user_id)
        return bool(row and row["is_admin"])

    # -- ACL rows (the Listing 3 check) --------------------------------------------

    def grant_acl(self, user_id: int, hospital: str, clinic: str) -> None:
        with self._lock:
            self._connection.execute(
                "INSERT INTO acl_privileges (u_id, hospital, clinic) VALUES (?, ?, ?)",
                (user_id, hospital, clinic),
            )
            self._bump_generation()
            self._connection.commit()

    def count_privileges(self, **conditions) -> int:
        """``Privileges.count(:conditions => {...})`` from Listing 3."""
        allowed = {"u_id", "hospital", "clinic"}
        unknown = set(conditions) - allowed
        if unknown:
            raise SafeWebError(f"unknown privilege columns {sorted(unknown)}")
        clause = " AND ".join(f"{column} = ?" for column in conditions)
        sql = "SELECT COUNT(*) AS n FROM acl_privileges"
        if clause:
            sql += f" WHERE {clause}"
        with self._lock:
            row = self._connection.execute(sql, tuple(conditions.values())).fetchone()
        return row["n"]

    # -- sessions --------------------------------------------------------------------

    def create_session(self, user_id: int) -> str:
        token = secrets.token_urlsafe(24)
        with self._lock:
            self._connection.execute(
                "INSERT INTO sessions (token, u_id, created_at) VALUES (?, ?, ?)",
                (token, user_id, time.time()),
            )
            self._connection.commit()
        return token

    def session_user(self, token: str, max_age: float = 3600.0) -> Optional[int]:
        with self._lock:
            row = self._connection.execute(
                "SELECT u_id, created_at FROM sessions WHERE token = ?", (token,)
            ).fetchone()
        if row is None:
            return None
        if time.time() - row["created_at"] > max_age:
            self.delete_session(token)
            return None
        return row["u_id"]

    def delete_session(self, token: str) -> None:
        with self._lock:
            self._connection.execute("DELETE FROM sessions WHERE token = ?", (token,))
            self._connection.commit()

    def session_count(self) -> int:
        with self._lock:
            row = self._connection.execute("SELECT COUNT(*) AS n FROM sessions").fetchone()
        return row["n"]

    # -- deployment configuration -------------------------------------------

    def config_get(self, key: str) -> Optional[str]:
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM config WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else row["value"]

    def config_set(self, key: str, value: str) -> None:
        with self._lock:
            self._connection.execute(
                "INSERT INTO config (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, value),
            )
            self._connection.commit()

    def config_setdefault(self, key: str, value: str) -> str:
        """Persist *value* under *key* unless one exists; return the winner.

        Deployment-scoped secrets (the CSRF signing key) go through this
        so a replica opening the same database file adopts the original
        deployment's secret instead of minting its own.
        """
        with self._lock:
            self._connection.execute(
                "INSERT OR IGNORE INTO config (key, value) VALUES (?, ?)",
                (key, value),
            )
            self._connection.commit()
            row = self._connection.execute(
                "SELECT value FROM config WHERE key = ?", (key,)
            ).fetchone()
        return row["value"]
