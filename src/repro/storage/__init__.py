"""Storage substrates (paper §5.1, Figure 4).

The MDT deployment uses three stores, all reproduced here:

* the **application database** — CouchDB in the paper; a document store
  with ``_id``/``_rev`` MVCC, incremental map/reduce views and a
  changes feed (:mod:`repro.storage.docstore`), hash-sharded behind the
  same API (:class:`~repro.storage.docstore.ShardedDatabase`), with
  batched CouchDB-style push replication
  (:mod:`repro.storage.replication`) and a CouchRest-like model layer
  (:mod:`repro.storage.couchrest`). The seed implementation survives as
  the executable spec in :mod:`repro.storage.reference`;
  The application database is durable on request: per-shard write-ahead
  logs with group-commit fsync batching and compacted snapshots
  (:mod:`repro.storage.wal`), crash recovery and persisted replication
  checkpoints (:mod:`repro.storage.recovery`), proven against
  deterministic fault injection (:mod:`repro.storage.faults`) — see
  ``docs/DURABILITY.md``;
* the **web database** — SQLite, holding users, privileges and sessions
  (:mod:`repro.storage.webdb`);
* the **main cancer registration database** — simulated relational store
  of patients/tumours/treatments (:mod:`repro.storage.maindb`).

See ``docs/STORAGE.md`` for the sharding scheme, view lifecycle,
replication checkpoint format and clearance-filtering rules.
"""

from repro.storage.docstore import (
    Change,
    Database,
    DocumentDatabase,
    DocumentStore,
    ShardedDatabase,
    ViewRow,
)
from repro.storage.replication import (
    ContinuousReplicator,
    ReplicationResult,
    Replicator,
    replicate,
)
from repro.storage.reference import ReferenceDatabase
from repro.storage.couchrest import Model
from repro.storage.webdb import WebDatabase
from repro.storage.maindb import MainDatabase, Patient, Treatment, Tumour
from repro.storage.faults import NULL_FAULTS, FaultInjector, SimulatedCrash
from repro.storage.recovery import (
    CheckpointStore,
    close_durable,
    flush_durable,
    open_durable_database,
    snapshot_durable,
)
from repro.storage.wal import ShardDurability, SnapshotStore, WalWriter, read_wal

__all__ = [
    "Change",
    "Database",
    "DocumentDatabase",
    "DocumentStore",
    "ShardedDatabase",
    "ViewRow",
    "ReferenceDatabase",
    "Replicator",
    "ReplicationResult",
    "ContinuousReplicator",
    "replicate",
    "Model",
    "WebDatabase",
    "MainDatabase",
    "Patient",
    "Tumour",
    "Treatment",
    "FaultInjector",
    "SimulatedCrash",
    "NULL_FAULTS",
    "CheckpointStore",
    "open_durable_database",
    "flush_durable",
    "snapshot_durable",
    "close_durable",
    "ShardDurability",
    "SnapshotStore",
    "WalWriter",
    "read_wal",
]
