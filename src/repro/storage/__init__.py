"""Storage substrates (paper §5.1, Figure 4).

The MDT deployment uses three stores, all reproduced here:

* the **application database** — CouchDB in the paper; a document store
  with ``_id``/``_rev`` MVCC, map views and a changes feed
  (:mod:`repro.storage.docstore`), with CouchDB-style push replication
  (:mod:`repro.storage.replication`) and a CouchRest-like model layer
  (:mod:`repro.storage.couchrest`);
* the **web database** — SQLite, holding users, privileges and sessions
  (:mod:`repro.storage.webdb`);
* the **main cancer registration database** — simulated relational store
  of patients/tumours/treatments (:mod:`repro.storage.maindb`).
"""

from repro.storage.docstore import Database, DocumentStore
from repro.storage.replication import ReplicationResult, Replicator, replicate
from repro.storage.couchrest import Model
from repro.storage.webdb import WebDatabase
from repro.storage.maindb import MainDatabase, Patient, Treatment, Tumour

__all__ = [
    "Database",
    "DocumentStore",
    "Replicator",
    "ReplicationResult",
    "replicate",
    "Model",
    "WebDatabase",
    "MainDatabase",
    "Patient",
    "Tumour",
    "Treatment",
]
