"""The simulated main cancer registration database (paper §2.1).

The real ECRIC main database holds structured information about patients,
tumours and associated treatments inside a secure private network. We
reproduce its *shape*: three relational-style tables with foreign keys,
indexed access paths the data producer uses, and a case-record join that
flattens one patient's clinical picture into the dict the producer
publishes as events. Data comes from the synthetic workload generator
(:mod:`repro.mdt.workload`) — the per-patient / per-MDT / per-region
structure the MDT policy discriminates on is what matters, not medical
realism.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class Patient:
    patient_id: str
    name: str
    date_of_birth: str
    nhs_number: str
    hospital: str
    mdt_id: str
    region: str


@dataclass(frozen=True)
class Tumour:
    tumour_id: str
    patient_id: str
    site: str
    stage: str
    diagnosis_date: str


@dataclass(frozen=True)
class Treatment:
    treatment_id: str
    tumour_id: str
    kind: str
    start_date: str
    outcome: Optional[str] = None


@dataclass
class CaseRecord:
    """The flattened join the data producer publishes (one per tumour)."""

    patient: Patient
    tumour: Tumour
    treatments: List[Treatment] = field(default_factory=list)

    def to_attributes(self) -> Dict[str, str]:
        """Event attributes (untyped strings, §4.1)."""
        return {
            "patient_id": self.patient.patient_id,
            "patient_name": self.patient.name,
            "date_of_birth": self.patient.date_of_birth,
            "nhs_number": self.patient.nhs_number,
            "hospital": self.patient.hospital,
            "mdt_id": self.patient.mdt_id,
            "region": self.patient.region,
            "tumour_id": self.tumour.tumour_id,
            "site": self.tumour.site,
            "stage": self.tumour.stage,
            "diagnosis_date": self.tumour.diagnosis_date,
            "treatment_count": str(len(self.treatments)),
            "treatments": ";".join(t.kind for t in self.treatments),
            "outcomes": ";".join(t.outcome or "" for t in self.treatments),
        }


class MainDatabase:
    """In-memory relational store with the producer's access paths."""

    def __init__(self):
        self._lock = threading.RLock()
        self._patients: Dict[str, Patient] = {}
        self._tumours: Dict[str, Tumour] = {}
        self._treatments: Dict[str, Treatment] = {}
        self._tumours_by_patient: Dict[str, List[str]] = {}
        self._treatments_by_tumour: Dict[str, List[str]] = {}
        self._patients_by_mdt: Dict[str, List[str]] = {}

    # -- inserts -------------------------------------------------------------

    def insert_patient(self, patient: Patient) -> None:
        with self._lock:
            if patient.patient_id in self._patients:
                raise ValueError(f"duplicate patient {patient.patient_id!r}")
            self._patients[patient.patient_id] = patient
            self._patients_by_mdt.setdefault(patient.mdt_id, []).append(patient.patient_id)

    def insert_tumour(self, tumour: Tumour) -> None:
        with self._lock:
            if tumour.patient_id not in self._patients:
                raise ValueError(f"tumour references unknown patient {tumour.patient_id!r}")
            self._tumours[tumour.tumour_id] = tumour
            self._tumours_by_patient.setdefault(tumour.patient_id, []).append(tumour.tumour_id)

    def insert_treatment(self, treatment: Treatment) -> None:
        with self._lock:
            if treatment.tumour_id not in self._tumours:
                raise ValueError(f"treatment references unknown tumour {treatment.tumour_id!r}")
            self._treatments[treatment.treatment_id] = treatment
            self._treatments_by_tumour.setdefault(treatment.tumour_id, []).append(
                treatment.treatment_id
            )

    def bulk_load(
        self,
        patients: Iterable[Patient] = (),
        tumours: Iterable[Tumour] = (),
        treatments: Iterable[Treatment] = (),
    ) -> None:
        """Insert many rows under one lock acquisition, atomically.

        Referential order is enforced within the call (patients before
        tumours before treatments), matching the per-row insert checks —
        but validation runs over the *whole* batch before any row is
        applied, so a bad row midway leaves the database untouched
        instead of half-loaded. The workload generator uses this so
        building a large synthetic registry is one critical section,
        not one per row.
        """
        patients = list(patients)
        tumours = list(tumours)
        treatments = list(treatments)
        with self._lock:
            known_patients = set(self._patients)
            for patient in patients:
                if patient.patient_id in known_patients:
                    raise ValueError(f"duplicate patient {patient.patient_id!r}")
                known_patients.add(patient.patient_id)
            known_tumours = set(self._tumours)
            for tumour in tumours:
                if tumour.patient_id not in known_patients:
                    raise ValueError(
                        f"tumour references unknown patient {tumour.patient_id!r}"
                    )
                known_tumours.add(tumour.tumour_id)
            for treatment in treatments:
                if treatment.tumour_id not in known_tumours:
                    raise ValueError(
                        f"treatment references unknown tumour {treatment.tumour_id!r}"
                    )
            for patient in patients:
                self._patients[patient.patient_id] = patient
                self._patients_by_mdt.setdefault(patient.mdt_id, []).append(
                    patient.patient_id
                )
            for tumour in tumours:
                self._tumours[tumour.tumour_id] = tumour
                self._tumours_by_patient.setdefault(tumour.patient_id, []).append(
                    tumour.tumour_id
                )
            for treatment in treatments:
                self._treatments[treatment.treatment_id] = treatment
                self._treatments_by_tumour.setdefault(treatment.tumour_id, []).append(
                    treatment.treatment_id
                )

    # -- queries ---------------------------------------------------------------

    def patient(self, patient_id: str) -> Optional[Patient]:
        with self._lock:
            return self._patients.get(patient_id)

    def patients(self) -> List[Patient]:
        with self._lock:
            return [self._patients[pid] for pid in sorted(self._patients)]

    def patients_for_mdt(self, mdt_id: str) -> List[Patient]:
        with self._lock:
            ids = list(self._patients_by_mdt.get(mdt_id, []))
            return [self._patients[pid] for pid in ids]

    def tumours_for(self, patient_id: str) -> List[Tumour]:
        with self._lock:
            ids = list(self._tumours_by_patient.get(patient_id, []))
            return [self._tumours[tid] for tid in ids]

    def treatments_for(self, tumour_id: str) -> List[Treatment]:
        with self._lock:
            ids = list(self._treatments_by_tumour.get(tumour_id, []))
            return [self._treatments[tid] for tid in ids]

    def mdt_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._patients_by_mdt)

    def regions(self) -> List[str]:
        with self._lock:
            return sorted({patient.region for patient in self._patients.values()})

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return {
                "patients": len(self._patients),
                "tumours": len(self._tumours),
                "treatments": len(self._treatments),
            }

    # -- the producer's join ------------------------------------------------------

    def case_records(self, mdt_id: Optional[str] = None) -> Iterator[CaseRecord]:
        """Flattened case records, one per tumour, optionally per MDT."""
        if mdt_id is None:
            patients = self.patients()
        else:
            patients = self.patients_for_mdt(mdt_id)
        for patient in patients:
            for tumour in self.tumours_for(patient.patient_id):
                yield CaseRecord(
                    patient=patient,
                    tumour=tumour,
                    treatments=self.treatments_for(tumour.tumour_id),
                )
