"""CouchDB-style push replication, batched and checkpointed per shard
(paper §5.1, Figure 4).

The MDT deployment runs two application database instances: one in the
Intranet written by the storage unit, and a **read-only** replica in the
DMZ read by the web frontend. The Intranet instance is push-replicated
to the DMZ — the only data flow crossing the firewall, and it flows
strictly outward (requirement S1).

Replication drains the source's changes feed in configurable batches
(:attr:`Replicator.batch_size`): each batch reads its stored documents
under one source lock (:meth:`~repro.storage.docstore.Database.raw_documents`)
and applies them under one target lock
(:meth:`~repro.storage.docstore.Database.replication_put_batch`). What
crosses the wire is the stored form — the plain body plus the label
sidecar collected by the single-pass
:func:`repro.taint.json_codec.encode_document` at original write time —
so confidentiality labels survive into the replica with no
re-serialisation on the replication path.

Checkpoints advance only after a batch fully applies, so a failure
mid-pass resumes from the last complete batch. When source and target
are :class:`~repro.storage.docstore.ShardedDatabase` instances with the
same shard count, each shard pair replicates through its own
checkpoint (documents hash to the same shard index on both sides).

:class:`ContinuousReplicator` wakes on a source changes-feed event
(:meth:`~repro.storage.docstore.Database.add_change_listener`) instead
of polling; its interval is only a fallback heartbeat.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ReplicationError
from repro.storage.docstore import Change, Database, DocumentDatabase

#: Default number of changes shipped per lock-acquisition batch.
DEFAULT_BATCH_SIZE = 100


@dataclass
class ReplicationResult:
    """Summary of one replication pass."""

    docs_written: int = 0
    deletions: int = 0
    start_seq: int = 0
    end_seq: int = 0
    batches: int = 0

    @property
    def changed(self) -> bool:
        return self.docs_written + self.deletions > 0


def _shard_pairs(
    source: DocumentDatabase, target: DocumentDatabase
) -> List[Tuple[str, DocumentDatabase, DocumentDatabase]]:
    """(checkpoint key, feed source, put target) triples for a pair.

    Same-shape sharded stores replicate shard-to-shard (one checkpoint
    each); anything else falls back to the merged feed with a single
    checkpoint, routed through the target's own ``replication_put_batch``.
    """
    source_shards = getattr(source, "shards", None)
    target_shards = getattr(target, "shards", None)
    if source_shards and target_shards and len(source_shards) == len(target_shards):
        return [
            (source_shard.name, source_shard, target_shard)
            for source_shard, target_shard in zip(source_shards, target_shards)
        ]
    return [("", source, target)]


class Replicator:
    """Push replication from *source* to *target* with checkpointing.

    The target may be (and for the DMZ, is) a read-only database: the
    replicator writes through
    :meth:`~repro.storage.docstore.Database.replication_put_batch`, the
    single sanctioned ingress, preserving "read-only to everyone else".
    """

    def __init__(
        self,
        source: DocumentDatabase,
        target: DocumentDatabase,
        batch_size: int = DEFAULT_BATCH_SIZE,
        checkpoint_store=None,
    ):
        if batch_size < 1:
            raise ReplicationError("batch_size must be at least 1")
        self.source = source
        self.target = target
        self.batch_size = batch_size
        self._lock = threading.Lock()
        #: checkpoint key (shard name, or "" for unsharded) -> last
        #: fully-applied sequence. Only complete batches advance these.
        self._checkpoints: Dict[str, int] = {}
        #: Optional :class:`repro.storage.recovery.CheckpointStore`:
        #: checkpoints are re-persisted after every completed batch, so
        #: a restarted replicator resumes per completed batch. Each
        #: loaded checkpoint is clamped to its feed's *current* sequence:
        #: a recovered source may have rolled back un-fsynced tail
        #: sequences, and a persisted checkpoint past the recovered
        #: watermark would silently skip the re-issued sequences.
        #: Clamping re-ships instead — replicated revisions apply
        #: verbatim, so re-shipping converges while skipping loses
        #: documents. (Construct the replicator before new traffic, as
        #: the deployment does, so the clamp sees the recovered seq.)
        self._checkpoint_store = checkpoint_store
        if checkpoint_store is not None:
            loaded = dict(checkpoint_store.load())
            for key, feed, _sink in _shard_pairs(source, target):
                if key in loaded:
                    loaded[key] = min(loaded[key], feed.update_seq)
            self._checkpoints = loaded

    def replicate(self) -> ReplicationResult:
        """One push pass; returns what moved (and in how many batches)."""
        if self.source is self.target:
            raise ReplicationError("source and target are the same database")
        with self._lock:
            result = ReplicationResult(start_seq=self._global_checkpoint())
            for key, feed, sink in _shard_pairs(self.source, self.target):
                self._drain_feed(key, feed, sink, result)
            result.end_seq = self._global_checkpoint()
            return result

    def _drain_feed(
        self,
        key: str,
        feed: DocumentDatabase,
        sink: DocumentDatabase,
        result: ReplicationResult,
    ) -> None:
        checkpoint = self._checkpoints.get(key, 0)
        changes = feed.changes(since=checkpoint)
        for start in range(0, len(changes), self.batch_size):
            batch = changes[start : start + self.batch_size]
            self._ship_batch(feed, sink, batch, result)
            # The checkpoint moves only after the whole batch applied:
            # a failure above leaves it at the previous batch boundary,
            # so the next pass resumes without losing documents.
            self._checkpoints[key] = batch[-1].seq
            if self._checkpoint_store is not None:
                self._checkpoint_store.save(self._checkpoints)
            result.batches += 1

    @staticmethod
    def _ship_batch(
        feed: DocumentDatabase,
        sink: DocumentDatabase,
        batch: List[Change],
        result: ReplicationResult,
    ) -> None:
        stored_docs = feed.raw_documents([change.doc_id for change in batch])
        entries = []
        written = deletions = 0
        for stored in stored_docs:
            if stored is None:
                continue
            # The stored form ships as-is; the target copies it and
            # assigns its own ordering (see ``_coerce_entry``).
            entries.append(stored)
            if stored.deleted:
                deletions += 1
            else:
                written += 1
        if entries:
            sink.replication_put_batch(entries)
        result.docs_written += written
        result.deletions += deletions

    def _global_checkpoint(self) -> int:
        return max(self._checkpoints.values(), default=0)

    @property
    def checkpoint(self) -> int:
        """The highest fully-applied source sequence (max across shards)."""
        with self._lock:
            return self._global_checkpoint()

    @property
    def shard_checkpoints(self) -> Dict[str, int]:
        """Per-feed checkpoints (shard name -> seq; ``""`` when unsharded)."""
        with self._lock:
            return dict(self._checkpoints)


def replicate(
    source: DocumentDatabase,
    target: DocumentDatabase,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> ReplicationResult:
    """One-shot push replication (fresh checkpoint: copies everything)."""
    return Replicator(source, target, batch_size=batch_size).replicate()


class ContinuousReplicator:
    """Background push replication that wakes on source writes.

    The paper replicates "periodically"; here the replication thread
    blocks on an event that the source's changes feed sets on every
    committed write, so documents cross the firewall one batch after
    they land instead of one polling interval later. *interval* remains
    as a fallback heartbeat (and :meth:`wake` still forces a pass, used
    by tests and by the storage unit after bursts of writes).

    A failing pass (say, a transiently read-only target mid-promotion)
    must not kill the daemon thread: the exception is contained,
    counted, optionally audited (``replication/continuous`` denied),
    and the pass is retried under capped exponential backoff —
    ``interval`` doubling per consecutive failure up to *max_backoff* —
    resetting on the first success. ``stop()``/``start()`` cycles are
    supported: start re-arms the stop flag, so a restarted replicator
    actually runs.
    """

    def __init__(
        self,
        source: DocumentDatabase,
        target: DocumentDatabase,
        interval: float = 1.0,
        batch_size: int = DEFAULT_BATCH_SIZE,
        checkpoint_store=None,
        audit=None,
        max_backoff: float = 30.0,
    ):
        self._replicator = Replicator(
            source, target, batch_size=batch_size, checkpoint_store=checkpoint_store
        )
        self._source = source
        self._interval = interval
        self._max_backoff = max_backoff
        self._audit = audit
        self._wakeup = threading.Event()
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._listening = False
        self.passes = 0
        self.total_docs = 0
        #: Total failed passes, and the most recent failure (diagnostics).
        self.failures = 0
        self.last_error: Optional[BaseException] = None

    def start(self) -> "ContinuousReplicator":
        if self._thread is not None:
            return self
        # A previous stop() left these set; a fresh thread must not see
        # them or it exits before its first pass.
        self._stopping.clear()
        self._wakeup.clear()
        listen = getattr(self._source, "add_change_listener", None)
        if listen is not None and not self._listening:
            listen(self._on_source_changes)
            self._listening = True
        self._thread = threading.Thread(
            target=self._loop, name="safeweb-replicator", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._listening:
            unlisten = getattr(self._source, "remove_change_listener", None)
            if unlisten is not None:
                unlisten(self._on_source_changes)
            self._listening = False
        self._stopping.set()
        self._wakeup.set()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None

    def wake(self) -> None:
        self._wakeup.set()

    def _on_source_changes(self, changes) -> None:
        self._wakeup.set()

    def _loop(self) -> None:
        consecutive_failures = 0
        while not self._stopping.is_set():
            try:
                result = self._replicator.replicate()
            except Exception as exc:
                consecutive_failures += 1
                self.failures += 1
                self.last_error = exc
                if self._audit is not None:
                    self._audit.denied(
                        "replication",
                        "continuous",
                        "system",
                        detail=f"pass failed ({consecutive_failures} consecutive): {exc!r}",
                    )
                delay = min(
                    self._interval * (2 ** (consecutive_failures - 1)),
                    self._max_backoff,
                )
                # Wait on the stop flag, not the wakeup event: backoff
                # stays responsive to stop() but a write burst cannot
                # collapse it into a hot retry loop.
                self._stopping.wait(delay)
                continue
            consecutive_failures = 0
            self.passes += 1
            self.total_docs += result.docs_written + result.deletions
            self._wakeup.wait(self._interval)
            self._wakeup.clear()

    def replicate_now(self) -> ReplicationResult:
        """Synchronous pass, regardless of the background schedule."""
        return self._replicator.replicate()
