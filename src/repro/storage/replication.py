"""CouchDB-style push replication (paper §5.1, Figure 4).

The MDT deployment runs two application database instances: one in the
Intranet written by the storage unit, and a **read-only** replica in the
DMZ read by the web frontend. The Intranet instance is periodically
push-replicated to the DMZ — the only data flow crossing the firewall,
and it flows strictly outward (requirement S1).

Replication consumes the source's changes feed from a per-pair
checkpoint, pushing body *and label sidecar* so confidentiality labels
survive into the replica.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ReplicationError
from repro.storage.docstore import Database


@dataclass
class ReplicationResult:
    """Summary of one replication pass."""

    docs_written: int = 0
    deletions: int = 0
    start_seq: int = 0
    end_seq: int = 0

    @property
    def changed(self) -> bool:
        return self.docs_written + self.deletions > 0


@dataclass
class Replicator:
    """Push replication from *source* to *target* with checkpointing.

    The target may be (and for the DMZ, is) a read-only database: the
    replicator writes through :meth:`Database.replication_put`, the single
    sanctioned ingress, preserving "read-only to everyone else".
    """

    source: Database
    target: Database
    _checkpoint: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def replicate(self) -> ReplicationResult:
        """One push pass; returns what moved."""
        if self.source is self.target:
            raise ReplicationError("source and target are the same database")
        with self._lock:
            result = ReplicationResult(start_seq=self._checkpoint)
            changes = self.source.changes(since=self._checkpoint)
            for change in changes:
                stored = self.source.raw_document(change.doc_id)
                if stored is None:
                    continue
                self.target.replication_put(
                    stored.doc_id,
                    stored.rev,
                    stored.body,
                    stored.sidecar,
                    deleted=stored.deleted,
                )
                if stored.deleted:
                    result.deletions += 1
                else:
                    result.docs_written += 1
                self._checkpoint = max(self._checkpoint, change.seq)
            result.end_seq = self._checkpoint
            return result

    @property
    def checkpoint(self) -> int:
        with self._lock:
            return self._checkpoint


def replicate(source: Database, target: Database) -> ReplicationResult:
    """One-shot push replication (fresh checkpoint: copies everything)."""
    return Replicator(source, target).replicate()


class ContinuousReplicator:
    """Periodic push replication on a background thread.

    The paper replicates "periodically"; the interval is configurable and
    :meth:`wake` forces an immediate pass (used by tests and by the
    storage unit after bursts of writes).
    """

    def __init__(self, source: Database, target: Database, interval: float = 1.0):
        self._replicator = Replicator(source, target)
        self._interval = interval
        self._wakeup = threading.Event()
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.passes = 0
        self.total_docs = 0

    def start(self) -> "ContinuousReplicator":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name="safeweb-replicator", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        self._wakeup.set()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None

    def wake(self) -> None:
        self._wakeup.set()

    def _loop(self) -> None:
        while not self._stopping.is_set():
            result = self._replicator.replicate()
            self.passes += 1
            self.total_docs += result.docs_written + result.deletions
            self._wakeup.wait(self._interval)
            self._wakeup.clear()

    def replicate_now(self) -> ReplicationResult:
        """Synchronous pass, regardless of the background schedule."""
        return self._replicator.replicate()
