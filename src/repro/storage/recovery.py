"""Crash recovery: rebuild a (sharded) document store from its data
directory, and persist replication checkpoints alongside it.

:func:`open_durable_database` is the one entry point — it creates *or*
recovers, so application startup is a single call:

    db = open_durable_database("var/app_db", "mdt_app", shards=8)

Layout of a durable store's directory::

    data_dir/
      meta.json            # {"name", "shards"} — shape guard on reopen
      shard-0/
        wal.log            # CRC-framed commit records (repro.storage.wal)
        snapshot.json      # CRC-checked compaction, atomically renamed
      shard-1/ ...

Recovery per shard: load the snapshot (if any), replay WAL records past
the snapshot sequence, truncate any torn tail, then hand the merged
entries to :meth:`~repro.storage.docstore.Database.load_recovered` —
documents, revisions, label sidecars, tombstones and the synthesized
changes feed all come back. The shared
:class:`~repro.storage.docstore.SequenceAllocator` is advanced to the
highest sequence any shard recovered, so new writes continue the
store-wide order. View indexes are rebuilt by the application's own
``define_view`` calls over the recovered documents (view definitions
are code, not data).

What recovery guarantees (proven by
``tests/property/test_crash_recovery.py`` across every instrumented
crash point): the recovered store is observation-equivalent to the
in-memory reference replaying a **prefix** of the submitted write
history, and every write covered by a completed fsync is inside that
prefix.

:class:`CheckpointStore` gives :class:`~repro.storage.replication.Replicator`
the same treatment: per-batch checkpoints persisted atomically, so a
restarted replicator resumes from the last *completed* batch. Because a
recovered source may have rolled back un-synced tail sequences, the
replicator clamps each persisted checkpoint to the source's current
``update_seq`` — re-shipping a batch is convergent (revisions apply
verbatim), silently skipping re-issued sequences would lose documents.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Tuple

from repro.exceptions import WalError
from repro.storage.docstore import Database, DocumentDatabase, make_database
from repro.storage.faults import NULL_FAULTS, FaultInjector
from repro.storage.wal import (
    DEFAULT_FSYNC_BATCH,
    DEFAULT_SNAPSHOT_EVERY,
    ShardDurability,
)

_META_FILE = "meta.json"


def _shards_of(database: DocumentDatabase) -> Tuple[Database, ...]:
    shards = getattr(database, "shards", None)
    return shards if shards is not None else (database,)


def _check_meta(directory: str, name: str, shards: int, faults: FaultInjector) -> None:
    """Write the shape descriptor on first open; refuse a mismatched reopen.

    Documents hash to shards by CRC-32 mod N — reopening N-sharded data
    as M-sharded would scatter recovered documents onto the wrong
    shards' WALs and quietly corrupt the store.
    """
    path = os.path.join(directory, _META_FILE)
    if os.path.exists(path):
        with open(path, "rb") as handle:
            try:
                meta = json.loads(handle.read())
            except ValueError:
                raise WalError(f"unreadable durability metadata at {path}") from None
        if meta.get("shards") != shards:
            raise WalError(
                f"data directory {directory!r} holds {meta.get('shards')} shard(s); "
                f"refusing to reopen with shards={shards}"
            )
        return
    tmp = path + ".tmp"
    handle = faults.open(tmp, "wb")
    try:
        handle.write(json.dumps({"name": name, "shards": shards}).encode())
        handle.fsync()
    finally:
        handle.close()
    faults.replace(tmp, path)


def open_durable_database(
    directory,
    name: str,
    shards: int = 1,
    read_only: bool = False,
    fsync_batch: int = DEFAULT_FSYNC_BATCH,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    faults: FaultInjector = NULL_FAULTS,
) -> DocumentDatabase:
    """Create or recover a durable document store rooted at *directory*.

    Returns the same :class:`~repro.storage.docstore.Database` /
    :class:`~repro.storage.docstore.ShardedDatabase` types the in-memory
    :func:`~repro.storage.docstore.make_database` yields — everything
    downstream (views, replication, models, the portal) is unchanged;
    only the write path gains WAL logging and fsync points.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    _check_meta(directory, name, shards, faults)
    database = make_database(name, read_only=read_only, shards=shards)
    last_seq = 0
    torn_shards: List[str] = []
    for index, shard in enumerate(_shards_of(database)):
        durability = ShardDurability(
            os.path.join(directory, f"shard-{index}"),
            fsync_batch=fsync_batch,
            snapshot_every=snapshot_every,
            faults=faults,
        )
        recovered = durability.recover()
        shard.load_recovered(recovered.entries)
        shard.attach_durability(durability)
        last_seq = max(last_seq, recovered.last_seq)
        if recovered.torn:
            torn_shards.append(shard.name)
    database._sequence.advance_to(last_seq)
    #: Shard names whose WAL had a torn/corrupt tail discarded at this
    #: recovery — diagnostic only; the surviving prefix is intact.
    database.recovered_torn_shards = tuple(torn_shards)
    return database


def flush_durable(database: DocumentDatabase) -> None:
    """Force a group-commit fsync on every shard (tests, clean shutdown)."""
    for shard in _shards_of(database):
        if shard.durability is not None:
            shard.durability.sync()


def snapshot_durable(database: DocumentDatabase) -> None:
    """Force a compacted snapshot (and WAL reset) on every shard."""
    for shard in _shards_of(database):
        if shard.durability is not None:
            shard.durability.snapshot(shard)


def close_durable(database: DocumentDatabase) -> None:
    """Release every shard's WAL file handle. Does not fsync pending
    records — call :func:`flush_durable` first for a clean shutdown (an
    unclean close is exactly a process crash, and recovery covers it)."""
    for shard in _shards_of(database):
        if shard.durability is not None:
            shard.durability.close()


class CheckpointStore:
    """Atomically persisted replication checkpoints.

    One JSON file (CRC-line framed like the snapshots), replaced via
    rename after every completed batch. ``load`` returns ``{}`` for a
    missing or unreadable file — the replicator then restarts from
    sequence zero, which re-ships documents but never loses one.
    """

    def __init__(self, path, faults: FaultInjector = NULL_FAULTS):
        self._path = os.fspath(path)
        self._tmp = self._path + ".tmp"
        self._faults = faults

    @property
    def path(self) -> str:
        return self._path

    def load(self) -> Dict[str, int]:
        if not os.path.exists(self._path):
            return {}
        with open(self._path, "rb") as handle:
            raw = handle.read()
        newline = raw.find(b"\n")
        if newline < 0:
            return {}
        body = raw[newline + 1 :]
        try:
            if int(raw[:newline], 16) != zlib.crc32(body):
                return {}
            payload = json.loads(body)
        except ValueError:
            return {}
        checkpoints = payload.get("checkpoints", {})
        return {str(key): int(value) for key, value in checkpoints.items()}

    def save(self, checkpoints: Dict[str, int]) -> None:
        body = json.dumps({"checkpoints": checkpoints}, separators=(",", ":")).encode()
        self._faults.hit("checkpoint.before")
        handle = self._faults.open(self._tmp, "wb")
        try:
            handle.write(b"%08x\n" % zlib.crc32(body))
            handle.write(body)
            handle.fsync()
        finally:
            handle.close()
        self._faults.replace(self._tmp, self._path)
        self._faults.hit("checkpoint.after")
