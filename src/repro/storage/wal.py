"""Per-shard write-ahead log and compacted snapshots.

Durability for the sharded document store (ROADMAP item 4) is built
from two on-disk artefacts per shard, both living in the shard's data
directory:

* ``wal.log`` — an append-only log of CRC-framed records, one per
  committed revision, carrying exactly the single-pass labeled document
  encoding the store already holds in memory: the plain body plus the
  RFC 6901 label sidecar produced by
  :func:`repro.taint.json_codec.encode_document` at original write
  time, the assigned store-wide sequence, the MVCC revision and the
  insertion-order slot. Nothing is re-serialised on the way down — the
  LWeb position (PAPERS.md) that labels must persist *with* the data
  they guard falls out of reusing the stored form;
* ``snapshot.json`` — a CRC-checked, atomically-renamed compaction of
  the full shard state at one sequence; after a snapshot lands the WAL
  is reset, bounding both log length and recovery time.

**Group-commit fsync batching.** Appends land in the OS page cache
immediately; ``fsync`` runs every *fsync_batch* records (``1`` = every
write) and always at a replication batch boundary — the batch-put path
(:meth:`repro.storage.docstore.Database.replication_put_batch`) is one
group commit. The acknowledgement contract this buys is spelled out in
``docs/DURABILITY.md``: recovery yields a *prefix* of the submitted
write history, and every write covered by a completed fsync is in it.

**Failure posture.** Any append or fsync error poisons the writer
(:class:`~repro.exceptions.WalError` on further use): once the log tail
is suspect, acknowledging more writes could leave a gap inside the
recovered prefix, which is the one inexcusable outcome.

Every instrumented instant calls into a
:class:`~repro.storage.faults.FaultInjector` (default: no-op), which is
how the crash-recovery property suite stops the world mid-append,
between fsyncs, or between a snapshot rename and the WAL reset.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import WalError
from repro.storage.docstore import _sidecar_labels, _StoredDocument
from repro.storage.faults import NULL_FAULTS, FaultInjector, SimulatedCrash

#: WAL file header; bump the digit on any framing change.
WAL_HEADER = b"SWAL1\n"

#: Frame prefix: payload length, CRC-32 of the payload.
_FRAME = struct.Struct("<II")

#: Default number of appended records between fsyncs (1 = sync every write).
DEFAULT_FSYNC_BATCH = 8

#: Default number of WAL records between compacted snapshots.
DEFAULT_SNAPSHOT_EVERY = 1024


def encode_commit(seq: int, stored: _StoredDocument) -> bytes:
    """One WAL record: the stored form of one committed revision.

    JSON keeps the record human-greppable and reuses the storable-JSON
    guarantee ``put`` already enforced on the body. Object keys must be
    strings (a JSON round-trip would coerce others; the store's own
    canonical dump enforces this for every storable document).
    """
    return json.dumps(
        [
            "c",
            seq,
            stored.doc_id,
            stored.rev,
            stored.body,
            stored.sidecar,
            1 if stored.deleted else 0,
            stored.order,
        ],
        separators=(",", ":"),
    ).encode()


def decode_commit(record: List) -> Tuple[int, _StoredDocument]:
    """Inverse of :func:`encode_commit`; recomputes the interned label
    union from the sidecar (cheap — labels hash-cons)."""
    kind, seq, doc_id, rev, body, sidecar, deleted, order = record
    if kind != "c":
        raise WalError(f"unknown WAL record kind {kind!r}")
    sidecar = {pointer: list(uris) for pointer, uris in sidecar.items()}
    return seq, _StoredDocument(
        doc_id,
        rev,
        body,
        sidecar,
        deleted=bool(deleted),
        order=order,
        labels=_sidecar_labels(sidecar),
    )


def read_wal(path: str) -> Tuple[List[List], int, bool]:
    """Read every intact record; tolerate a torn tail.

    Returns ``(records, valid_length, torn)`` where *valid_length* is
    the byte offset of the last intact record boundary — the writer
    truncates to it before reuse — and *torn* reports whether trailing
    bytes (a partial or corrupt final record) were discarded. A missing
    file or an unrecognisable header reads as empty.
    """
    if not os.path.exists(path):
        return [], 0, False
    with open(path, "rb") as handle:
        data = handle.read()
    if data[: len(WAL_HEADER)] != WAL_HEADER:
        # Torn header (power loss during creation): nothing recoverable.
        return [], 0, len(data) > 0
    offset = len(WAL_HEADER)
    records: List[List] = []
    while offset + _FRAME.size <= len(data):
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            break  # partial payload: torn tail
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt record: distrust everything after it
        try:
            records.append(json.loads(payload))
        except ValueError:
            break
        offset = end
    return records, offset, offset < len(data)


class WalWriter:
    """Appends CRC-framed records with group-commit fsync batching.

    Thread contract: ``append`` runs under the owning shard's lock (the
    commit choke point), ``sync``/``maybe_sync`` may run from any thread
    after the lock is released — an internal lock keeps the counters and
    the file coherent, and any thread's fsync covers every prior append.
    """

    def __init__(
        self,
        path: str,
        fsync_batch: int = DEFAULT_FSYNC_BATCH,
        faults: FaultInjector = NULL_FAULTS,
        valid_length: Optional[int] = None,
    ):
        if fsync_batch < 1:
            raise WalError("fsync_batch must be at least 1")
        self._lock = threading.RLock()
        self._faults = faults
        self._fsync_batch = fsync_batch
        self._failed = False
        self._file = faults.open(path, "ab")
        if self._file.written == 0:
            self._file.write(WAL_HEADER)
            self._file.fsync()
        elif valid_length is not None and valid_length < self._file.written:
            # Drop the torn tail a recovery reported before appending
            # after it — a new record must start at a frame boundary.
            self._file.truncate_to(max(valid_length, 0))
        #: Records appended / covered by a completed fsync, this process.
        self.appended = 0
        self.durable = 0

    def append(self, payload: bytes) -> None:
        with self._lock:
            self._guard()
            try:
                self._faults.hit("wal.append.before")
                frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
                torn_keep = self._faults.take_torn_keep(len(frame))
                if torn_keep is not None:
                    # A simulated mid-append crash: part of the frame
                    # reaches the file, then the process dies.
                    self._file.write(frame[:torn_keep])
                    self._file.flush()
                    raise SimulatedCrash("wal.append.torn")
                self._file.write(frame)
                self.appended += 1
                self._faults.hit("wal.append.after")
            except BaseException:
                self._failed = True
                raise

    def maybe_sync(self) -> None:
        """Group commit: fsync once *fsync_batch* records are pending."""
        with self._lock:
            if self.appended - self.durable >= self._fsync_batch:
                self.sync()

    def sync(self) -> None:
        """Fsync everything appended so far (no-op when already durable)."""
        with self._lock:
            self._guard()
            if self.durable == self.appended:
                return
            try:
                self._faults.hit("wal.sync.before")
                self._file.fsync()
                self._faults.hit("wal.sync.after")
            except BaseException:
                self._failed = True
                raise
            self.durable = self.appended

    def reset(self) -> None:
        """Truncate back to the header after a snapshot landed."""
        with self._lock:
            self._guard()
            try:
                self._file.truncate_to(len(WAL_HEADER))
                self._file.fsync()
                self._faults.hit("wal.reset")
            except BaseException:
                self._failed = True
                raise
            self.appended = 0
            self.durable = 0

    @property
    def pending(self) -> int:
        with self._lock:
            return self.appended - self.durable

    @property
    def failed(self) -> bool:
        return self._failed

    def _guard(self) -> None:
        if self._failed:
            raise WalError(
                "write-ahead log entered the failed state (an earlier append "
                "or fsync raised); reopen the store to recover"
            )

    def close(self) -> None:
        self._file.close()


class SnapshotStore:
    """One CRC-checked snapshot file, replaced atomically.

    The tmp file is fully written and fsynced *before* the rename, so
    ``snapshot.json`` is always either the previous complete snapshot or
    the new complete snapshot — never a partial one. The CRC line guards
    against bit rot and fault-injected corruption.
    """

    def __init__(self, directory: str, faults: FaultInjector = NULL_FAULTS):
        self._path = os.path.join(os.fspath(directory), "snapshot.json")
        self._tmp = self._path + ".tmp"
        self._faults = faults

    @property
    def path(self) -> str:
        return self._path

    def write(self, payload: Dict) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode()
        self._faults.hit("snapshot.begin")
        handle = self._faults.open(self._tmp, "wb")
        try:
            handle.write(b"%08x\n" % zlib.crc32(body))
            handle.write(body)
            handle.fsync()
        finally:
            handle.close()
        self._faults.hit("snapshot.written")
        self._faults.replace(self._tmp, self._path)
        self._faults.hit("snapshot.renamed")

    def load(self) -> Optional[Dict]:
        if not os.path.exists(self._path):
            return None
        with open(self._path, "rb") as handle:
            raw = handle.read()
        newline = raw.find(b"\n")
        if newline < 0:
            return None
        body = raw[newline + 1 :]
        try:
            if int(raw[:newline], 16) != zlib.crc32(body):
                return None
            return json.loads(body)
        except ValueError:
            return None


@dataclass
class RecoveredShard:
    """What one shard's durability directory yielded at recovery."""

    #: ``(seq, stored_document)`` in ascending sequence order — snapshot
    #: state first, then replayed WAL records (later records override).
    entries: List[Tuple[int, _StoredDocument]]
    #: Highest sequence recovered (snapshot seq when the WAL was empty).
    last_seq: int
    #: A torn or corrupt WAL tail was discarded.
    torn: bool
    #: WAL records replayed on top of the snapshot.
    replayed: int


class ShardDurability:
    """WAL + snapshot manager for one :class:`~repro.storage.docstore.Database`.

    Attached via
    :meth:`~repro.storage.docstore.Database.attach_durability`; the
    store calls :meth:`log_commit` from its commit choke point (under
    the shard lock), :meth:`commit_point` after each single-document
    write and :meth:`batch_point` after each replication batch.
    """

    def __init__(
        self,
        directory: str,
        fsync_batch: int = DEFAULT_FSYNC_BATCH,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        faults: FaultInjector = NULL_FAULTS,
    ):
        if snapshot_every < 1:
            raise WalError("snapshot_every must be at least 1")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._wal_path = os.path.join(self.directory, "wal.log")
        self._snapshots = SnapshotStore(self.directory, faults)
        self._faults = faults
        self._fsync_batch = fsync_batch
        self._snapshot_every = snapshot_every
        self._writer: Optional[WalWriter] = None
        self._snapshot_seq = 0
        self._records_since_snapshot = 0

    # -- recovery --------------------------------------------------------------

    def recover(self) -> RecoveredShard:
        """Load snapshot + replay the WAL; open the writer for reuse.

        WAL records at or below the snapshot sequence are skipped (a
        crash between the snapshot rename and the WAL reset leaves them
        behind); a torn tail is measured here and truncated away by the
        writer before any new append.
        """
        snapshot = self._snapshots.load()
        entries: List[Tuple[int, _StoredDocument]] = []
        snapshot_seq = 0
        if snapshot is not None:
            snapshot_seq = snapshot["seq"]
            for record in snapshot["docs"]:
                entries.append(decode_commit(record))
        records, valid_length, torn = read_wal(self._wal_path)
        replayed = 0
        for record in records:
            seq, stored = decode_commit(record)
            if seq <= snapshot_seq:
                continue
            entries.append((seq, stored))
            replayed += 1
        entries.sort(key=lambda entry: entry[0])
        last_seq = entries[-1][0] if entries else snapshot_seq
        last_seq = max(last_seq, snapshot_seq)
        self._writer = WalWriter(
            self._wal_path,
            fsync_batch=self._fsync_batch,
            faults=self._faults,
            valid_length=valid_length,
        )
        self._snapshot_seq = snapshot_seq
        self._records_since_snapshot = replayed
        return RecoveredShard(entries, last_seq, torn, replayed)

    # -- the write path --------------------------------------------------------

    def log_commit(self, stored: _StoredDocument, seq: int) -> None:
        """Append one committed revision (called under the shard lock)."""
        self._require_writer().append(encode_commit(seq, stored))
        self._records_since_snapshot += 1

    def commit_point(self, database) -> None:
        """After a single-document write: batched fsync, maybe snapshot."""
        self._require_writer().maybe_sync()
        self._maybe_snapshot(database)

    def batch_point(self, database) -> None:
        """After a replication batch: group-commit fsync, maybe snapshot."""
        self._require_writer().sync()
        self._maybe_snapshot(database)

    def sync(self) -> None:
        self._require_writer().sync()

    def _maybe_snapshot(self, database) -> None:
        if self._records_since_snapshot >= self._snapshot_every:
            self.snapshot(database)

    def snapshot(self, database) -> None:
        """Compact: serialise the shard, land it atomically, reset the WAL.

        Runs entirely under the shard lock so no commit can slip between
        the serialised state and the WAL reset — a record appended in
        that window would be discarded by the reset without being in the
        snapshot, losing an acknowledged write.
        """
        with database._lock:
            payload = database.durable_state()
            self._snapshots.write(payload)
            self._require_writer().reset()
            self._snapshot_seq = payload["seq"]
            self._records_since_snapshot = 0

    # -- introspection ---------------------------------------------------------

    @property
    def writer(self) -> Optional[WalWriter]:
        return self._writer

    @property
    def snapshot_seq(self) -> int:
        return self._snapshot_seq

    @property
    def records_since_snapshot(self) -> int:
        return self._records_since_snapshot

    def _require_writer(self) -> WalWriter:
        if self._writer is None:
            raise WalError("ShardDurability used before recover()")
        return self._writer

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
