"""A CouchRest-like model layer (paper §5.1).

The MDT web frontend uses CouchRest to access CouchDB — typed model
classes with view-backed finders such as ``Records.by_mid(key: mid)``
(Listing 2, line 6). This module reproduces that surface::

    class Records(Model):
        view_by = ("mid", "hospital")

    Records.use(database)
    records = Records.by_mid(key="1")

``view_by = ("mid",)`` auto-defines a view emitting ``doc["mid"]`` and a
``by_mid`` classmethod. Instances behave like dictionaries whose values
carry the labels persisted with the document, so application code that
manipulates model fields stays inside the taint-tracking net.

Models bind to either database flavour — a single
:class:`~repro.storage.docstore.Database` or a
:class:`~repro.storage.docstore.ShardedDatabase` — through the common
:data:`~repro.storage.docstore.DocumentDatabase` surface; ``by_<attr>``
finders ride the incremental per-key view index either way.
"""

from __future__ import annotations

import threading
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple

from repro.core.labels import LabelSet
from repro.exceptions import SafeWebError
from repro.storage.docstore import DocumentDatabase


class _DocIdCounter:
    """Process-wide allocator for generated ``{model}-N`` document ids.

    A bare ``itertools.count`` restarts at 1 in every process, so a
    model bound to a *recovered* durable database would re-issue ids
    the store already holds and every ``save()`` would die with
    ``DocumentConflict``. :meth:`Model.use` therefore advances the
    floor past the highest generated id the database already contains
    (tombstones included — a deleted document's id must not come back
    as a different record).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = 1

    def allocate(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            return value

    def advance_past(self, value: int) -> None:
        with self._lock:
            if value >= self._next:
                self._next = value + 1


_doc_ids = _DocIdCounter()


class Model:
    """Base class for document-backed models."""

    #: Attribute names to index; each generates a ``by_<name>`` finder.
    view_by: ClassVar[Tuple[str, ...]] = ()
    _database: ClassVar[Optional[DocumentDatabase]] = None
    #: Optional circuit breaker guarding every database call the model
    #: issues (repro.events.supervision.CircuitBreaker); bound per model
    #: class via ``use(db, breaker=...)``.
    _breaker: ClassVar[Optional[object]] = None

    def __init__(self, attributes: Optional[Dict[str, Any]] = None, **kwargs):
        merged = dict(attributes or {})
        merged.update(kwargs)
        self._attributes = merged

    # -- class-level wiring ------------------------------------------------

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        cls._database = None
        cls._breaker = None
        for attribute in cls.view_by:
            setattr(cls, f"by_{attribute}", _make_finder(cls, attribute))

    @classmethod
    def use(cls, database: DocumentDatabase, breaker=None) -> None:
        """Bind the model to a database (plain or sharded) and define its views.

        *breaker* (a :class:`~repro.events.supervision.CircuitBreaker`)
        guards every subsequent persistence call the model makes: a
        failing backend trips it open and calls are rejected fast with
        :class:`~repro.exceptions.CircuitOpenError` until the breaker's
        reset timeout lets a probe through.
        """
        cls._database = database
        cls._breaker = breaker
        for attribute in cls.view_by:
            database.define_view(cls._view_name(attribute), _make_map(attribute))
        # A recovered database already holds generated ids; keep the
        # allocator ahead of every ``{model}-N`` it contains (the
        # changes feed covers tombstones, which all_docs would miss).
        prefix = f"{cls.__name__.lower()}-"
        for change in database.changes(since=0):
            if change.doc_id.startswith(prefix):
                suffix = change.doc_id[len(prefix):]
                if suffix.isdigit():
                    _doc_ids.advance_past(int(suffix))

    @classmethod
    def database(cls) -> DocumentDatabase:
        if cls._database is None:
            raise SafeWebError(f"model {cls.__name__} is not bound; call {cls.__name__}.use(db)")
        return cls._database

    @classmethod
    def _db_call(cls, operation, *args, **kwargs):
        """Issue one database call, through the breaker when bound."""
        if cls._breaker is None:
            return operation(*args, **kwargs)
        return cls._breaker.call(operation, *args, **kwargs)

    @classmethod
    def _view_name(cls, attribute: str) -> str:
        return f"{cls.__name__.lower()}/by_{attribute}"

    # -- instance behaviour ---------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self._attributes[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._attributes[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._attributes.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._attributes

    def keys(self):
        return self._attributes.keys()

    def items(self):
        return self._attributes.items()

    def to_dict(self) -> Dict[str, Any]:
        return dict(self._attributes)

    @property
    def doc_id(self) -> Optional[str]:
        return self._attributes.get("_id")

    @property
    def rev(self) -> Optional[str]:
        return self._attributes.get("_rev")

    def __eq__(self, other) -> bool:
        if isinstance(other, Model):
            return self._attributes == other._attributes
        return NotImplemented

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._attributes!r})"

    # -- persistence --------------------------------------------------------------

    def save(self) -> "Model":
        cls = type(self)
        database = cls.database()
        if "_id" not in self._attributes:
            self._attributes["_id"] = (
                f"{cls.__name__.lower()}-{_doc_ids.allocate()}"
            )
        outcome = cls._db_call(database.put, self._attributes)
        self._attributes["_rev"] = outcome["rev"]
        return self

    def destroy(self) -> None:
        cls = type(self)
        database = cls.database()
        if self.doc_id is None or self.rev is None:
            raise SafeWebError("cannot destroy an unsaved model")
        cls._db_call(database.delete, self.doc_id, self.rev)

    @classmethod
    def find(cls, doc_id: str) -> "Model":
        return cls(cls._db_call(cls.database().get, doc_id))

    @classmethod
    def find_or_none(cls, doc_id: str) -> Optional["Model"]:
        document = cls._db_call(cls.database().get_or_none, doc_id)
        return None if document is None else cls(document)

    @classmethod
    def all(cls) -> List["Model"]:
        """Every live document, in stable insertion (sequence) order."""
        return [cls(document) for document in cls._db_call(cls.database().all_docs)]

    @classmethod
    def count(cls) -> int:
        return len(cls.database())


def _make_map(attribute: str):
    def map_function(document) -> Iterable:
        if isinstance(document, dict) and attribute in document:
            yield document[attribute], None

    map_function.__name__ = f"map_by_{attribute}"
    return map_function


def _make_finder(cls, attribute: str):
    def finder(
        model_cls, key: Any = None, clearance: Optional[LabelSet] = None
    ) -> List[Model]:
        rows = model_cls._db_call(
            model_cls.database().view,
            model_cls._view_name(attribute),
            key=key,
            include_docs=True,
            clearance=clearance,
        )
        return [model_cls(row.value) for row in rows]

    finder.__name__ = f"by_{attribute}"
    finder.__doc__ = (
        f"Documents whose {attribute!r} equals *key* (all when omitted); "
        f"*clearance* pre-filters to documents readable under that label set."
    )
    return classmethod(finder)
