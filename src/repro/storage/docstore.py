"""A CouchDB-like document store with label persistence, sharding and
incremental views.

The MDT application stores processed records *with their security labels*
in the application database (paper §5.1). Documents here are plain JSON
values plus a label sidecar produced by
:func:`repro.taint.json_codec.encode_document`; reads re-attach labels so
the web frontend transparently receives labeled values (§4.4, step 2).

Implemented CouchDB behaviours the reproduction relies on:

* ``_id`` / ``_rev`` optimistic concurrency (MVCC): writes must present
  the current revision or fail with :class:`DocumentConflict`;
* map (and optional reduce) views — Python callables instead of
  JavaScript — maintained as **incremental secondary indexes**: map
  output is stored per (view, document), invalidated tombstone-style
  when the document is updated or deleted, and queried through a
  per-key index instead of a full scan;
* a monotonic changes feed with batch reads and change listeners, which
  replication consumes;
* a read-only mode for the DMZ replica (security requirement S1);
* :class:`ShardedDatabase` — N :class:`Database` shards behind the same
  API, hash-partitioned by document id, sharing one store-wide sequence
  so the merged changes feed and document ordering stay globally
  monotonic.

Enforcement semantics (which rows a reader sees, which labels they
carry, how ``update_seq`` advances) are pinned byte-identical to the
seed implementation, preserved as the executable specification in
:mod:`repro.storage.reference` and enforced by
``tests/property/test_sharded_store.py``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.labels import EMPTY_LABELS, LabelSet
from repro.exceptions import DocumentConflict, DocumentNotFound, ReadOnlyError, SafeWebError
from repro.taint import json_codec
from repro.taint.labeled import labels_of, strip_labels

#: A map view callable: receives the (plain) document, yields
#: ``(key, value)`` pairs — the analogue of CouchDB's ``emit``.
MapFunction = Callable[[Dict[str, Any]], Iterable]

#: A CouchDB-style reduce callable: ``reduce(keys, values, rereduce)``.
#: ``keys`` is a list of ``(emitted_key, doc_id)`` pairs (``None`` when
#: re-reducing), ``values`` the emitted values (or partial results when
#: ``rereduce`` is true).
ReduceFunction = Callable[[Optional[List[Tuple[Any, str]]], List[Any], bool], Any]


class SequenceAllocator:
    """Thread-safe monotonic sequence source.

    A standalone :class:`Database` owns a private allocator (seed
    semantics: ``update_seq`` counts that database's writes). A
    :class:`ShardedDatabase` passes one shared allocator to every shard,
    so sequence numbers are unique and monotonic *across* shards and the
    merged changes feed needs no per-shard tie-breaking.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def next(self) -> int:
        with self._lock:
            self._value += 1
            return self._value

    def reserve(self, count: int) -> int:
        """Allocate *count* consecutive sequences; returns the first.

        Batch writers (replication) take one block per batch instead of
        one lock round-trip per document. Blocks from different shards
        interleave at batch granularity — still unique, still monotonic
        within every shard's feed.
        """
        with self._lock:
            start = self._value + 1
            self._value += count
            return start

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def advance_to(self, value: int) -> None:
        """Raise the high-water mark to at least *value* (never lowers).

        Crash recovery calls this after replaying every shard's WAL so
        post-recovery writes continue the store-wide sequence instead of
        re-issuing sequences the changes feed (and any replication
        checkpoint) has already seen.
        """
        with self._lock:
            if value > self._value:
                self._value = value


@dataclass
class _StoredDocument:
    doc_id: str
    rev: str
    body: Any  # plain JSON value (no labels)
    sidecar: Dict[str, List[str]]
    deleted: bool = False
    #: Store-wide sequence at which this id was (last) created; orders
    #: :meth:`Database.all_doc_ids`. Preserved across updates, renewed
    #: when a deleted id is recreated.
    order: int = 0
    #: Union of every label set in the sidecar — the document's combined
    #: confidentiality, precomputed for clearance-filtered view reads.
    labels: LabelSet = EMPTY_LABELS


@dataclass(frozen=True)
class Change:
    """One entry of the changes feed."""

    seq: int
    doc_id: str
    rev: str
    deleted: bool


@dataclass(frozen=True)
class ViewRow:
    """One row of a view query result."""

    doc_id: str
    key: Any
    value: Any


class _ViewIndex:
    """Incremental secondary index for one view.

    ``rows`` holds the stripped map output per document (the tombstone
    unit: a document update or delete drops its entry and re-emits).
    ``by_key`` maps each hashable emitted key to the documents that
    emitted it, so exact-key queries touch only matching documents;
    documents with unhashable emitted keys land in ``unhashable_docs``
    and are scanned (equality may still hold where hashing cannot).
    ``labeled_rows`` lazily caches the map output over the *labeled*
    document for documents with a non-empty sidecar, so labeled view
    rows are derived once per write instead of once per read.
    """

    __slots__ = ("map_function", "reduce_function", "rows", "by_key", "unhashable_docs", "labeled_rows")

    def __init__(self, map_function: MapFunction, reduce_function: Optional[ReduceFunction] = None):
        self.map_function = map_function
        self.reduce_function = reduce_function
        self.rows: Dict[str, List[Tuple[Any, Any]]] = {}
        self.by_key: Dict[Any, Set[str]] = {}
        self.unhashable_docs: Set[str] = set()
        self.labeled_rows: Dict[str, List[Tuple[Any, Any]]] = {}


def _next_rev(current: Optional[str], canonical_body: str) -> str:
    """Next MVCC revision from the canonical JSON text of the body.

    Callers pass the already-serialised body so validation and digesting
    share a single ``json.dumps`` per write.
    """
    generation = 0
    if current:
        generation = int(current.split("-", 1)[0])
    digest = hashlib.md5(canonical_body.encode()).hexdigest()[:16]
    return f"{generation + 1}-{digest}"


def _sidecar_labels(sidecar: Dict[str, List[str]]) -> LabelSet:
    """The union of every label set in a sidecar (interned, cheap)."""
    combined = EMPTY_LABELS
    for uris in sidecar.values():
        combined = combined.union(LabelSet.from_uris(tuple(uris)))
    return combined


def _coerce_entry(entry) -> _StoredDocument:
    """A fresh target-side :class:`_StoredDocument` from a batch entry.

    Accepts the replicator's source documents (copied, never aliased:
    the target assigns its own ``order``) or plain 5-tuples from
    wire-level callers. A source without precomputed labels (the
    reference store) gets its sidecar folded here.
    """
    if isinstance(entry, _StoredDocument):
        labels = entry.labels
        if entry.sidecar and not labels:
            labels = _sidecar_labels(entry.sidecar)
        return _StoredDocument(
            entry.doc_id, entry.rev, entry.body, dict(entry.sidecar),
            entry.deleted, labels=labels,
        )
    doc_id, rev, body, sidecar, deleted = entry
    return _StoredDocument(
        doc_id, rev, body, dict(sidecar), deleted, labels=_sidecar_labels(sidecar)
    )


def _is_hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


class Database:
    """One named database (or one shard of a :class:`ShardedDatabase`).

    Thread-safe behind a single re-entrant lock; a sharded store gives
    each shard its own instance so writes to different shards never
    contend.
    """

    def __init__(
        self,
        name: str,
        read_only: bool = False,
        sequence: Optional[SequenceAllocator] = None,
    ):
        self.name = name
        self.read_only = read_only
        self._lock = threading.RLock()
        self._sequence = sequence if sequence is not None else SequenceAllocator()
        self._documents: Dict[str, _StoredDocument] = {}
        self._seq = 0  # last sequence recorded by *this* database
        self._changes: List[Change] = []
        self._views: Dict[str, _ViewIndex] = {}
        #: doc_id -> labeled (decoded) document, shared across views;
        #: invalidated whenever the document changes.
        self._decoded_cache: Dict[str, Any] = {}
        self._listeners: List[Callable[[List[Change]], None]] = []
        #: Optional :class:`repro.storage.wal.ShardDurability`; when set,
        #: every commit is WAL-logged before the write is acknowledged.
        self._durability = None

    # -- writes ----------------------------------------------------------------

    def put(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """Insert or update a document; returns ``{"id":…, "rev":…}``.

        The document may contain labeled values anywhere; labels are
        split into the sidecar before the plain body is stored, and the
        presented ``_rev`` must match the stored revision (MVCC).
        """
        result, change = self._put(document)
        self._durable_point()
        self._notify([change])
        return result

    def _put(self, document: Dict[str, Any]) -> Tuple[Dict[str, Any], Change]:
        """The write itself, without listener notification (see callers)."""
        self._guard_writable()
        if "_id" not in document:
            raise SafeWebError("document requires an _id")
        doc_id = strip_labels(str(document["_id"]))
        presented_rev = document.get("_rev")
        body = {k: v for k, v in document.items() if k not in ("_id", "_rev")}
        plain, sidecar = json_codec.encode_document(body)
        # One serialisation doubles as eager storable-JSON validation and
        # the revision digest input (identical digests to the former
        # two-dump flow for every storable document).
        canonical = json.dumps(plain, sort_keys=True)

        with self._lock:
            existing = self._documents.get(doc_id)
            if existing is not None and not existing.deleted:
                if presented_rev != existing.rev:
                    raise DocumentConflict(
                        f"revision mismatch for {doc_id!r}",
                        doc_id=doc_id,
                        current_rev=existing.rev,
                    )
                rev = _next_rev(existing.rev, canonical)
            else:
                if presented_rev is not None and existing is None:
                    raise DocumentConflict(
                        f"document {doc_id!r} does not exist", doc_id=doc_id
                    )
                rev = _next_rev(existing.rev if existing else None, canonical)
            stored = _StoredDocument(
                doc_id, rev, plain, sidecar, labels=_sidecar_labels(sidecar)
            )
            change = self._commit(stored, existing)
        return {"id": doc_id, "rev": rev}, change

    def upsert(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """Insert-or-update without the caller tracking ``_rev``.

        Atomically adopts the current revision (if any) under the store
        lock, so the get-then-put race the seed's consumers worked
        around with retries cannot happen within one database.
        """
        self._guard_writable()
        if "_id" not in document:
            raise SafeWebError("document requires an _id")
        doc_id = strip_labels(str(document["_id"]))
        # Revision adoption and commit share one lock hold (no MVCC race
        # window), but listeners still fire after the lock is released.
        with self._lock:
            fresh = dict(document)
            existing = self._documents.get(doc_id)
            if existing is not None and not existing.deleted:
                fresh["_rev"] = existing.rev
            else:
                fresh.pop("_rev", None)
            result, change = self._put(fresh)
        self._durable_point()
        self._notify([change])
        return result

    def delete(self, doc_id: str, rev: str) -> Dict[str, Any]:
        """Delete by id + current revision; leaves a tombstone in the feed."""
        self._guard_writable()
        with self._lock:
            existing = self._documents.get(doc_id)
            if existing is None or existing.deleted:
                raise DocumentNotFound(f"no document {doc_id!r}")
            if existing.rev != rev:
                raise DocumentConflict(
                    f"revision mismatch for {doc_id!r}", doc_id=doc_id, current_rev=existing.rev
                )
            tombstone_rev = _next_rev(existing.rev, json.dumps(None))
            stored = _StoredDocument(doc_id, tombstone_rev, None, {}, deleted=True)
            change = self._commit(stored, existing)
        self._durable_point()
        self._notify([change])
        return {"id": doc_id, "rev": tombstone_rev}

    def replication_put(
        self,
        doc_id: str,
        rev: str,
        body: Any,
        sidecar: Dict[str, List[str]],
        deleted: bool = False,
    ) -> None:
        """Write a replicated revision verbatim (bypasses MVCC, not
        read-only protection — the replica accepts pushes only through
        :class:`~repro.storage.replication.Replicator`, which flips the
        internal flag)."""
        self.replication_put_batch([(doc_id, rev, body, sidecar, deleted)])

    def replication_put_batch(self, entries: Iterable) -> int:
        """Apply a batch of replicated revisions under one lock acquisition.

        Each entry is either a ``(doc_id, rev, body, sidecar, deleted)``
        tuple or a source :class:`_StoredDocument` (the replicator ships
        the latter — bodies pre-stripped and sidecars pre-collected by
        the single-pass :func:`~repro.taint.json_codec.encode_document`
        at original write time, combined labels precomputed, so
        replication never re-serialises or re-folds). Returns the number
        of entries applied.
        """
        materialised = [_coerce_entry(entry) for entry in entries]
        changes: List[Change] = []
        with self._lock:
            seq = self._sequence.reserve(len(materialised)) if materialised else 0
            for stored in materialised:
                existing = self._documents.get(stored.doc_id)
                changes.append(self._commit(stored, existing, seq=seq))
                seq += 1
        self._durable_barrier()
        self._notify(changes)
        return len(changes)

    def _commit(
        self,
        stored: _StoredDocument,
        existing: Optional[_StoredDocument],
        seq: Optional[int] = None,
    ) -> Change:
        """Install a stored revision: ordering, changes feed, view upkeep.

        Must run under :attr:`_lock`. *seq* lets batch writers pass a
        pre-reserved sequence instead of taking the allocator lock per
        document.
        """
        if existing is not None and not existing.deleted:
            stored.order = existing.order  # updates keep their slot
        self._documents[stored.doc_id] = stored
        self._seq = self._sequence.next() if seq is None else seq
        if stored.order == 0:
            stored.order = self._seq  # creations (and recreations) append
        change = Change(self._seq, stored.doc_id, stored.rev, stored.deleted)
        self._changes.append(change)
        if self._durability is not None:
            # Write-ahead under the same lock hold that installed the
            # revision: the log is strictly append-ordered with commits,
            # so recovery always yields a prefix of the commit history.
            self._durability.log_commit(stored, self._seq)
        self._decoded_cache.pop(stored.doc_id, None)
        for view in self._views.values():
            self._index_one(view, stored)
        return change

    # -- durability -----------------------------------------------------------

    def attach_durability(self, durability) -> None:
        """Attach a :class:`repro.storage.wal.ShardDurability`.

        Call after :meth:`load_recovered` and before serving writes —
        recovery loads must not be re-logged. Use
        :func:`repro.storage.recovery.open_durable_database` rather than
        wiring this by hand.
        """
        self._durability = durability

    @property
    def durability(self):
        return self._durability

    def _durable_point(self) -> None:
        """Single-document acknowledgement point: batched fsync + maybe
        snapshot. Runs after the store lock is released; any thread's
        fsync covers every previously appended record."""
        durability = self._durability
        if durability is not None:
            durability.commit_point(self)

    def _durable_barrier(self) -> None:
        """Replication-batch acknowledgement point: one group-commit
        fsync per batch, whatever the configured ``fsync_batch``."""
        durability = self._durability
        if durability is not None:
            durability.batch_point(self)

    def durable_state(self) -> Dict[str, Any]:
        """The snapshot payload: every stored document (tombstones
        included) at its latest change sequence, plus the shard's last
        recorded sequence. Keeping tombstones preserves MVCC conflict
        detection and replication of deletes across a restart."""
        with self._lock:
            docs = []
            for change in self.changes(since=0):
                stored = self._documents[change.doc_id]
                docs.append(
                    [
                        "c",
                        change.seq,
                        stored.doc_id,
                        stored.rev,
                        stored.body,
                        stored.sidecar,
                        1 if stored.deleted else 0,
                        stored.order,
                    ]
                )
            return {"seq": self._seq, "docs": docs}

    def load_recovered(self, entries: Iterable[Tuple[int, _StoredDocument]]) -> None:
        """Install recovered ``(seq, stored_document)`` entries.

        Entries must ascend by sequence (later entries override earlier
        ones for the same document — WAL replay order). Bypasses MVCC,
        read-only protection, WAL logging and listeners by design: this
        reconstructs state that was already acknowledged. Register views
        *after* loading; :meth:`define_view` indexes the recovered
        documents exactly as it indexes pre-existing ones.
        """
        with self._lock:
            for seq, stored in entries:
                self._documents[stored.doc_id] = stored
                self._changes.append(Change(seq, stored.doc_id, stored.rev, stored.deleted))
                if seq > self._seq:
                    self._seq = seq

    def _guard_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyError(
                f"database {self.name!r} is read-only (S1: DMZ replicas reject writes)"
            )

    # -- change listeners --------------------------------------------------------

    def add_change_listener(self, listener: Callable[[List[Change]], None]) -> None:
        """Call *listener* with each committed batch of changes.

        Listeners run on the writer's thread, after the store lock is
        released; the continuous replicator uses one to wake on writes
        instead of polling.
        """
        self._listeners.append(listener)

    def remove_change_listener(self, listener: Callable[[List[Change]], None]) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, changes: List[Change]) -> None:
        if not changes:
            return
        for listener in list(self._listeners):
            listener(changes)

    # -- reads ------------------------------------------------------------------

    def get(self, doc_id: str) -> Dict[str, Any]:
        """Fetch a document with labels re-attached."""
        with self._lock:
            stored = self._documents.get(doc_id)
        if stored is None or stored.deleted:
            raise DocumentNotFound(f"no document {doc_id!r}")
        body = json_codec.decode_document(stored.body, stored.sidecar)
        result = dict(body)
        result["_id"] = stored.doc_id
        result["_rev"] = stored.rev
        return result

    def get_or_none(self, doc_id: str) -> Optional[Dict[str, Any]]:
        try:
            return self.get(doc_id)
        except DocumentNotFound:
            return None

    def __contains__(self, doc_id: str) -> bool:
        with self._lock:
            stored = self._documents.get(doc_id)
        return stored is not None and not stored.deleted

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for doc in self._documents.values() if not doc.deleted)

    def all_doc_ids(self) -> List[str]:
        """Live document ids in **stable insertion (sequence) order**.

        Guarantee: ids appear in the order their documents were first
        created; updates keep a document's slot, and recreating a
        deleted id moves it to the end. Because the order key is the
        store-wide change sequence, the ordering is identical whether
        documents live in one :class:`Database` or are merged across
        :class:`ShardedDatabase` shards.

        On a replica the order reflects *replicated arrival*, which
        matches the source feed — with one caveat: a delete+recreate
        collapsed into a single deduplicated change ships as an update,
        so the replica keeps the document's existing slot even though
        the source moved it to the end.
        """
        with self._lock:
            live = [doc for doc in self._documents.values() if not doc.deleted]
        live.sort(key=lambda doc: doc.order)
        return [doc.doc_id for doc in live]

    def _ordered_ids(self) -> List[Tuple[int, str]]:
        """(order, doc_id) pairs for live documents (shard merge input)."""
        with self._lock:
            return [
                (doc.order, doc.doc_id)
                for doc in self._documents.values()
                if not doc.deleted
            ]

    def all_docs(self) -> List[Dict[str, Any]]:
        """Live documents, labels re-attached, in :meth:`all_doc_ids` order."""
        return [self.get(doc_id) for doc_id in self.all_doc_ids()]

    # -- views ---------------------------------------------------------------------

    def define_view(
        self,
        name: str,
        map_function: MapFunction,
        reduce_function: Optional[ReduceFunction] = None,
    ) -> None:
        """Register a map (and optional reduce) view.

        *map_function* receives each (plain) document and yields
        ``(key, value)`` pairs — the Python analogue of a CouchDB design
        document's ``emit(key, value)``. *reduce_function* follows the
        CouchDB protocol ``reduce(keys, values, rereduce)`` and is
        invoked by :meth:`view` with ``reduce=True``.

        The view is indexed immediately over existing documents and
        maintained incrementally on every subsequent write.
        """
        with self._lock:
            view = _ViewIndex(map_function, reduce_function)
            self._views[name] = view
            for stored in self._documents.values():
                self._index_one(view, stored)

    def view(
        self,
        name: str,
        key: Any = None,
        include_docs: bool = False,
        clearance: Optional[LabelSet] = None,
        reduce: bool = False,
    ) -> Any:
        """Query a view.

        * ``key`` filters to rows whose emitted key equals *key* —
          served from the per-key index, falling back to a scan only
          for unhashable keys;
        * ``include_docs`` resolves each row's document (labels
          re-attached, exactly like :meth:`get`);
        * ``clearance`` drops rows whose *document's* combined
          confidentiality labels do not flow to the given clearance
          label set, using the memoized lattice check — rows from
          unlabeled documents pass without allocating;
        * ``reduce`` runs the view's reduce function over the matching
          rows and returns the reduced value instead of rows.

        Row order is stable: ascending document id, emissions in map
        order — identical to the seed store and across shard counts.

        Returned keys and values are owned by the view index (the seed
        store shared its index objects the same way): treat rows as
        read-only, or mutate a copy.
        """
        with self._lock:
            view = self._views.get(name)
            if view is None:
                raise DocumentNotFound(f"no view {name!r} in database {self.name!r}")
            if reduce:
                return self._reduce(view, key, clearance)
            rows = self._matching_rows(view, key, clearance)
            if not include_docs:
                resolved = []
                for doc_id, emitted_key, emitted_value in rows:
                    stored = self._documents[doc_id]
                    if not stored.sidecar:
                        resolved.append(ViewRow(doc_id, emitted_key, emitted_value))
                    else:
                        resolved.append(
                            self._relabel_row(ViewRow(doc_id, emitted_key, emitted_value))
                        )
                return resolved
        return [
            ViewRow(doc_id, emitted_key, self.get(doc_id))
            for doc_id, emitted_key, _emitted_value in rows
        ]

    def _matching_rows(
        self, view: _ViewIndex, key: Any, clearance: Optional[LabelSet]
    ) -> List[Tuple[str, Any, Any]]:
        """(doc_id, key, value) triples matching *key*, in row order.

        Must run under :attr:`_lock`.
        """
        if key is None or not _is_hashable(key):
            candidates: Iterable[str] = view.rows
        else:
            matched = view.by_key.get(key)
            if matched is None and not view.unhashable_docs:
                return []
            candidates = (
                matched | view.unhashable_docs if matched is not None
                else view.unhashable_docs
            )
        rows: List[Tuple[str, Any, Any]] = []
        for doc_id in sorted(candidates):
            if clearance is not None:
                stored = self._documents.get(doc_id)
                if stored is not None and not stored.labels.flows_to(clearance):
                    continue
            for emitted_key, emitted_value in view.rows[doc_id]:
                if key is not None and emitted_key != key:
                    continue
                rows.append((doc_id, emitted_key, emitted_value))
        return rows

    def _reduce(self, view: _ViewIndex, key: Any, clearance: Optional[LabelSet]) -> Any:
        if view.reduce_function is None:
            raise SafeWebError("view has no reduce function")
        has_rows, partial = self._reduce_partial_locked(view, key, clearance)
        if not has_rows:
            return view.reduce_function([], [], False)
        return partial

    def _reduce_partial_locked(
        self, view: _ViewIndex, key: Any, clearance: Optional[LabelSet]
    ) -> Tuple[bool, Any]:
        """(has_rows, reduce-over-matching-rows) for shard re-reduce."""
        rows = self._matching_rows(view, key, clearance)
        if not rows:
            return False, None
        keys = [(emitted_key, doc_id) for doc_id, emitted_key, _value in rows]
        values = [value for _doc_id, _key, value in rows]
        return True, view.reduce_function(keys, values, False)

    def _reduce_partial(
        self, name: str, key: Any, clearance: Optional[LabelSet]
    ) -> Tuple[bool, Any]:
        with self._lock:
            view = self._views.get(name)
            if view is None:
                raise DocumentNotFound(f"no view {name!r} in database {self.name!r}")
            if view.reduce_function is None:
                raise SafeWebError("view has no reduce function")
            return self._reduce_partial_locked(view, key, clearance)

    def _relabel_row(self, row: ViewRow) -> ViewRow:
        """Re-derive a row from the labeled document (seed semantics).

        Views are searched in definition order for one whose index holds
        this (key, value) for the document; that view's map output over
        the *labeled* document (cached per write in ``labeled_rows``)
        supplies the first emission whose stripped form matches. Must
        run under :attr:`_lock`.
        """
        stored = self._documents.get(row.doc_id)
        if stored is None or not stored.sidecar:
            return row
        for view in self._views.values():
            emissions = view.rows.get(row.doc_id)
            if emissions is None or (row.key, row.value) not in emissions:
                continue
            for emitted_key, emitted_value in self._labeled_rows(view, stored):
                if (
                    strip_labels(emitted_key) == row.key
                    and strip_labels(emitted_value) == row.value
                ):
                    return ViewRow(row.doc_id, emitted_key, emitted_value)
            return row
        return row

    def _labeled_rows(self, view: _ViewIndex, stored: _StoredDocument) -> List[Tuple[Any, Any]]:
        """Map output over the labeled document, cached until the doc changes."""
        cached = view.labeled_rows.get(stored.doc_id)
        if cached is not None:
            return cached
        labeled = self._decoded_cache.get(stored.doc_id)
        if labeled is None:
            labeled = json_codec.decode_document(stored.body, stored.sidecar)
            self._decoded_cache[stored.doc_id] = labeled
        # Hand the map function a copy (the same protection _index_one
        # gives the plain body) so a mutating map cannot corrupt the
        # shared decoded cache.
        subject = dict(labeled) if isinstance(labeled, dict) else labeled
        rows = [(emitted_key, emitted_value) for emitted_key, emitted_value in view.map_function(subject)]
        view.labeled_rows[stored.doc_id] = rows
        return rows

    def _index_one(self, view: _ViewIndex, stored: _StoredDocument) -> None:
        """(Re-)index one document into one view; tombstones invalidate.

        Must run under :attr:`_lock`.
        """
        previous = view.rows.pop(stored.doc_id, None)
        if previous is not None:
            for emitted_key, _value in previous:
                if _is_hashable(emitted_key):
                    docs = view.by_key.get(emitted_key)
                    if docs is not None:
                        docs.discard(stored.doc_id)
                        if not docs:
                            del view.by_key[emitted_key]
            view.unhashable_docs.discard(stored.doc_id)
        view.labeled_rows.pop(stored.doc_id, None)
        if stored.deleted:
            return
        emissions = []
        document = dict(stored.body) if isinstance(stored.body, dict) else stored.body
        if isinstance(document, dict):
            document["_id"] = stored.doc_id
        try:
            for emitted in view.map_function(document):
                emitted_key, emitted_value = emitted
                emissions.append((strip_labels(emitted_key), strip_labels(emitted_value)))
        except (KeyError, TypeError, AttributeError):
            # CouchDB semantics: a map function that fails on a document
            # simply emits nothing for it.
            emissions = []
        if emissions:
            view.rows[stored.doc_id] = emissions
            for emitted_key, _value in emissions:
                if _is_hashable(emitted_key):
                    view.by_key.setdefault(emitted_key, set()).add(stored.doc_id)
                else:
                    view.unhashable_docs.add(stored.doc_id)

    # -- changes feed ------------------------------------------------------------------

    @property
    def update_seq(self) -> int:
        """The last sequence this database recorded (store-wide when sharded)."""
        with self._lock:
            return self._seq

    def changes(self, since: int = 0) -> List[Change]:
        """Changes after sequence *since*, deduplicated to the latest per doc."""
        with self._lock:
            recent = [change for change in self._changes if change.seq > since]
        latest: Dict[str, Change] = {}
        for change in recent:
            latest[change.doc_id] = change
        return sorted(latest.values(), key=lambda change: change.seq)

    def raw_document(self, doc_id: str) -> Optional[_StoredDocument]:
        """The stored form (replication reads this to push body+sidecar)."""
        with self._lock:
            return self._documents.get(doc_id)

    def raw_documents(self, doc_ids: Sequence[str]) -> List[Optional[_StoredDocument]]:
        """Stored forms for a batch of ids under one lock acquisition."""
        with self._lock:
            return [self._documents.get(doc_id) for doc_id in doc_ids]

    # -- maintenance -------------------------------------------------------------

    def document_labels(self, doc_id: str) -> Any:
        """The combined label set of a stored document."""
        document = self.get(doc_id)
        return labels_of({k: v for k, v in document.items() if k not in ("_id", "_rev")})


class ShardedDatabase:
    """N :class:`Database` shards behind the single-database API.

    Document ids are hash-partitioned (CRC-32, stable across processes)
    over the shards; every shard draws sequence numbers from one shared
    :class:`SequenceAllocator`, so the merged changes feed is globally
    monotonic and :meth:`all_doc_ids` ordering matches a single
    database holding the same writes. Per-shard locks mean concurrent
    writers on different shards never contend.

    Reads merge shard results deterministically: view rows ascend by
    document id (emissions in map order), changes ascend by sequence,
    document ids ascend by insertion sequence — all byte-identical to
    the sequential seed store (see ``tests/property/test_sharded_store.py``).
    """

    def __init__(self, name: str, shards: int = 8, read_only: bool = False):
        if shards < 1:
            raise SafeWebError("a sharded database needs at least one shard")
        self.name = name
        self.read_only = read_only
        self._sequence = SequenceAllocator()
        self.shards: Tuple[Database, ...] = tuple(
            Database(f"{name}/shard-{index}", read_only=read_only, sequence=self._sequence)
            for index in range(shards)
        )

    def shard_for(self, doc_id: str) -> Database:
        """The shard owning *doc_id* (CRC-32 of the UTF-8 id, modulo N)."""
        return self.shards[zlib.crc32(doc_id.encode("utf-8")) % len(self.shards)]

    # -- writes ----------------------------------------------------------------

    def put(self, document: Dict[str, Any]) -> Dict[str, Any]:
        if "_id" not in document:
            raise SafeWebError("document requires an _id")
        return self.shard_for(strip_labels(str(document["_id"]))).put(document)

    def upsert(self, document: Dict[str, Any]) -> Dict[str, Any]:
        if "_id" not in document:
            raise SafeWebError("document requires an _id")
        return self.shard_for(strip_labels(str(document["_id"]))).upsert(document)

    def delete(self, doc_id: str, rev: str) -> Dict[str, Any]:
        return self.shard_for(doc_id).delete(doc_id, rev)

    def replication_put(
        self,
        doc_id: str,
        rev: str,
        body: Any,
        sidecar: Dict[str, List[str]],
        deleted: bool = False,
    ) -> None:
        self.shard_for(doc_id).replication_put(doc_id, rev, body, sidecar, deleted)

    def replication_put_batch(self, entries: Iterable) -> int:
        # Entries apply in feed order — consecutive same-shard runs share
        # a lock acquisition, but a run commits before the next shard's
        # begins, so documents are created here in the order the feed
        # presents them, whatever the shard count on either side (see
        # the all_doc_ids docstring for the replica-ordering caveat).
        applied = 0
        run: List[Any] = []
        current: Optional[Database] = None
        for entry in entries:
            doc_id = entry.doc_id if isinstance(entry, _StoredDocument) else entry[0]
            shard = self.shard_for(doc_id)
            if shard is not current and run:
                applied += current.replication_put_batch(run)
                run = []
            current = shard
            run.append(entry)
        if run:
            applied += current.replication_put_batch(run)
        return applied

    # -- change listeners --------------------------------------------------------

    def add_change_listener(self, listener: Callable[[List[Change]], None]) -> None:
        for shard in self.shards:
            shard.add_change_listener(listener)

    def remove_change_listener(self, listener: Callable[[List[Change]], None]) -> None:
        for shard in self.shards:
            shard.remove_change_listener(listener)

    # -- reads ------------------------------------------------------------------

    def get(self, doc_id: str) -> Dict[str, Any]:
        return self.shard_for(doc_id).get(doc_id)

    def get_or_none(self, doc_id: str) -> Optional[Dict[str, Any]]:
        return self.shard_for(doc_id).get_or_none(doc_id)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self.shard_for(doc_id)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def all_doc_ids(self) -> List[str]:
        """Live ids in stable insertion order, merged across shards.

        The order key is the store-wide sequence each document was
        created at, so the result is identical to an unsharded database
        holding the same write history (see :meth:`Database.all_doc_ids`).
        """
        merged: List[Tuple[int, str]] = []
        for shard in self.shards:
            merged.extend(shard._ordered_ids())
        merged.sort()
        return [doc_id for _order, doc_id in merged]

    def all_docs(self) -> List[Dict[str, Any]]:
        """Live documents, labels re-attached, in :meth:`all_doc_ids` order."""
        return [self.get(doc_id) for doc_id in self.all_doc_ids()]

    # -- views ---------------------------------------------------------------------

    def define_view(
        self,
        name: str,
        map_function: MapFunction,
        reduce_function: Optional[ReduceFunction] = None,
    ) -> None:
        """Register a view on every shard (same incremental index per shard)."""
        for shard in self.shards:
            shard.define_view(name, map_function, reduce_function)

    def view(
        self,
        name: str,
        key: Any = None,
        include_docs: bool = False,
        clearance: Optional[LabelSet] = None,
        reduce: bool = False,
    ) -> Any:
        """Query a view across all shards (see :meth:`Database.view`).

        Map rows are merged in ascending document-id order (shards hold
        disjoint ids, so a k-way merge of per-shard sorted rows is
        exact). With ``reduce=True``, each shard reduces its own rows
        and the partials are re-reduced (``rereduce=True``).
        """
        if reduce:
            return self._reduce(name, key, clearance)
        shard_rows = [
            shard.view(name, key=key, include_docs=include_docs, clearance=clearance)
            for shard in self.shards
        ]
        merged: List[ViewRow] = []
        for rows in shard_rows:
            merged.extend(rows)
        merged.sort(key=_row_doc_id)
        return merged

    def _reduce(self, name: str, key: Any, clearance: Optional[LabelSet]) -> Any:
        reduce_function: Optional[ReduceFunction] = None
        partials: List[Any] = []
        for shard in self.shards:
            view = shard._views.get(name)
            if view is None:
                raise DocumentNotFound(f"no view {name!r} in database {self.name!r}")
            if view.reduce_function is None:
                raise SafeWebError("view has no reduce function")
            reduce_function = view.reduce_function
            has_rows, partial = shard._reduce_partial(name, key, clearance)
            if has_rows:
                partials.append(partial)
        if not partials:
            return reduce_function([], [], False)
        if len(partials) == 1:
            return partials[0]
        return reduce_function(None, partials, True)

    # -- changes feed ------------------------------------------------------------------

    @property
    def update_seq(self) -> int:
        """The store-wide sequence (total writes across every shard)."""
        return self._sequence.value

    def changes(self, since: int = 0) -> List[Change]:
        """Merged changes feed after *since*, ascending by global sequence.

        Shards hold disjoint documents and share the sequence allocator,
        so per-shard deduplicated feeds concatenate into one globally
        deduplicated, strictly increasing feed.
        """
        merged: List[Change] = []
        for shard in self.shards:
            merged.extend(shard.changes(since=since))
        merged.sort(key=lambda change: change.seq)
        return merged

    def raw_document(self, doc_id: str) -> Optional[_StoredDocument]:
        return self.shard_for(doc_id).raw_document(doc_id)

    def raw_documents(self, doc_ids: Sequence[str]) -> List[Optional[_StoredDocument]]:
        return [self.shard_for(doc_id).raw_document(doc_id) for doc_id in doc_ids]

    # -- maintenance -------------------------------------------------------------

    def document_labels(self, doc_id: str) -> Any:
        return self.shard_for(doc_id).document_labels(doc_id)


def _row_doc_id(row: ViewRow) -> str:
    return row.doc_id


#: Either database flavour — everything downstream (models, replication,
#: storage units, the portal) is written against this common surface.
DocumentDatabase = Union[Database, ShardedDatabase]


def make_database(name: str, read_only: bool = False, shards: int = 1) -> DocumentDatabase:
    """The one construction dispatch: ``shards > 1`` yields a
    :class:`ShardedDatabase`, else a plain :class:`Database`."""
    if shards > 1:
        return ShardedDatabase(name, shards=shards, read_only=read_only)
    return Database(name, read_only=read_only)


class DocumentStore:
    """A server holding named databases (the CouchDB instance analogue)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._databases: Dict[str, DocumentDatabase] = {}

    def create(self, name: str, read_only: bool = False, shards: int = 1) -> DocumentDatabase:
        """Create a database; ``shards > 1`` yields a :class:`ShardedDatabase`."""
        with self._lock:
            if name in self._databases:
                raise SafeWebError(f"database {name!r} already exists")
            database = make_database(name, read_only=read_only, shards=shards)
            self._databases[name] = database
            return database

    def get(self, name: str) -> DocumentDatabase:
        with self._lock:
            try:
                return self._databases[name]
            except KeyError:
                raise DocumentNotFound(f"no database {name!r}") from None

    def get_or_create(self, name: str, read_only: bool = False, shards: int = 1) -> DocumentDatabase:
        with self._lock:
            if name not in self._databases:
                self._databases[name] = make_database(
                    name, read_only=read_only, shards=shards
                )
            return self._databases[name]

    def drop(self, name: str) -> None:
        with self._lock:
            self._databases.pop(name, None)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._databases)
