"""A CouchDB-like document store with label persistence.

The MDT application stores processed records *with their security labels*
in the application database (paper §5.1). Documents here are plain JSON
values plus a label sidecar produced by
:func:`repro.taint.json_codec.encode_document`; reads re-attach labels so
the web frontend transparently receives labeled values (§4.4, step 2).

Implemented CouchDB behaviours the reproduction relies on:

* ``_id`` / ``_rev`` optimistic concurrency (MVCC): writes must present
  the current revision or fail with :class:`DocumentConflict`;
* map views (Python callables instead of JavaScript) queried by key,
  maintained incrementally as documents change;
* a monotonic changes feed, which replication consumes;
* a read-only mode for the DMZ replica (security requirement S1).
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import DocumentConflict, DocumentNotFound, ReadOnlyError, SafeWebError
from repro.taint import json_codec
from repro.taint.labeled import labels_of, strip_labels


@dataclass
class _StoredDocument:
    doc_id: str
    rev: str
    body: Any  # plain JSON value (no labels)
    sidecar: Dict[str, List[str]]
    deleted: bool = False


@dataclass(frozen=True)
class Change:
    """One entry of the changes feed."""

    seq: int
    doc_id: str
    rev: str
    deleted: bool


@dataclass(frozen=True)
class ViewRow:
    """One row of a view query result."""

    doc_id: str
    key: Any
    value: Any


def _next_rev(current: Optional[str], canonical_body: str) -> str:
    """Next MVCC revision from the canonical JSON text of the body.

    Callers pass the already-serialised body so validation and digesting
    share a single ``json.dumps`` per write.
    """
    generation = 0
    if current:
        generation = int(current.split("-", 1)[0])
    digest = hashlib.md5(canonical_body.encode()).hexdigest()[:16]
    return f"{generation + 1}-{digest}"


class Database:
    """One named database inside a :class:`DocumentStore`."""

    def __init__(self, name: str, read_only: bool = False):
        self.name = name
        self.read_only = read_only
        self._lock = threading.RLock()
        self._documents: Dict[str, _StoredDocument] = {}
        self._seq = 0
        self._changes: List[Change] = []
        # view name -> (map function, doc_id -> [(key, value)])
        self._views: Dict[str, Tuple[Callable, Dict[str, List[Tuple[Any, Any]]]]] = {}

    # -- writes ----------------------------------------------------------------

    def put(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """Insert or update a document; returns ``{"id":…, "rev":…}``.

        The document may contain labeled values anywhere; labels are
        split into the sidecar before the plain body is stored, and the
        presented ``_rev`` must match the stored revision (MVCC).
        """
        self._guard_writable()
        if "_id" not in document:
            raise SafeWebError("document requires an _id")
        doc_id = strip_labels(str(document["_id"]))
        presented_rev = document.get("_rev")
        body = {k: v for k, v in document.items() if k not in ("_id", "_rev")}
        plain, sidecar = json_codec.encode_document(body)
        # One serialisation doubles as eager storable-JSON validation and
        # the revision digest input (identical digests to the former
        # two-dump flow for every storable document).
        canonical = json.dumps(plain, sort_keys=True)

        with self._lock:
            existing = self._documents.get(doc_id)
            if existing is not None and not existing.deleted:
                if presented_rev != existing.rev:
                    raise DocumentConflict(
                        f"revision mismatch for {doc_id!r}",
                        doc_id=doc_id,
                        current_rev=existing.rev,
                    )
                rev = _next_rev(existing.rev, canonical)
            else:
                if presented_rev is not None and existing is None:
                    raise DocumentConflict(
                        f"document {doc_id!r} does not exist", doc_id=doc_id
                    )
                rev = _next_rev(existing.rev if existing else None, canonical)
            stored = _StoredDocument(doc_id, rev, plain, sidecar)
            self._documents[doc_id] = stored
            self._record_change(stored)
            self._index_document(stored)
        return {"id": doc_id, "rev": rev}

    def delete(self, doc_id: str, rev: str) -> Dict[str, Any]:
        self._guard_writable()
        with self._lock:
            existing = self._documents.get(doc_id)
            if existing is None or existing.deleted:
                raise DocumentNotFound(f"no document {doc_id!r}")
            if existing.rev != rev:
                raise DocumentConflict(
                    f"revision mismatch for {doc_id!r}", doc_id=doc_id, current_rev=existing.rev
                )
            tombstone_rev = _next_rev(existing.rev, json.dumps(None))
            stored = _StoredDocument(doc_id, tombstone_rev, None, {}, deleted=True)
            self._documents[doc_id] = stored
            self._record_change(stored)
            self._index_document(stored)
        return {"id": doc_id, "rev": tombstone_rev}

    def replication_put(
        self,
        doc_id: str,
        rev: str,
        body: Any,
        sidecar: Dict[str, List[str]],
        deleted: bool = False,
    ) -> None:
        """Write a replicated revision verbatim (bypasses MVCC, not
        read-only protection — the replica accepts pushes only through
        :class:`~repro.storage.replication.Replicator`, which flips the
        internal flag)."""
        with self._lock:
            stored = _StoredDocument(doc_id, rev, body, dict(sidecar), deleted)
            self._documents[doc_id] = stored
            self._record_change(stored)
            self._index_document(stored)

    def _guard_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyError(
                f"database {self.name!r} is read-only (S1: DMZ replicas reject writes)"
            )

    # -- reads ------------------------------------------------------------------

    def get(self, doc_id: str) -> Dict[str, Any]:
        """Fetch a document with labels re-attached."""
        with self._lock:
            stored = self._documents.get(doc_id)
        if stored is None or stored.deleted:
            raise DocumentNotFound(f"no document {doc_id!r}")
        body = json_codec.decode_document(stored.body, stored.sidecar)
        result = dict(body)
        result["_id"] = stored.doc_id
        result["_rev"] = stored.rev
        return result

    def get_or_none(self, doc_id: str) -> Optional[Dict[str, Any]]:
        try:
            return self.get(doc_id)
        except DocumentNotFound:
            return None

    def __contains__(self, doc_id: str) -> bool:
        with self._lock:
            stored = self._documents.get(doc_id)
        return stored is not None and not stored.deleted

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for doc in self._documents.values() if not doc.deleted)

    def all_doc_ids(self) -> List[str]:
        with self._lock:
            return sorted(
                doc_id for doc_id, doc in self._documents.items() if not doc.deleted
            )

    def all_docs(self) -> List[Dict[str, Any]]:
        return [self.get(doc_id) for doc_id in self.all_doc_ids()]

    # -- views ---------------------------------------------------------------------

    def define_view(self, name: str, map_function: Callable[[Dict[str, Any]], Iterable]) -> None:
        """Register a map view.

        *map_function* receives each (plain) document and yields
        ``(key, value)`` pairs — the Python analogue of a CouchDB design
        document's ``emit(key, value)``.
        """
        with self._lock:
            index: Dict[str, List[Tuple[Any, Any]]] = {}
            self._views[name] = (map_function, index)
            for stored in self._documents.values():
                self._index_one(name, stored)

    def view(
        self,
        name: str,
        key: Any = None,
        include_docs: bool = False,
    ) -> List[ViewRow]:
        """Query a view, optionally filtered by exact key.

        Values and (with ``include_docs``) documents come back with
        labels re-attached, exactly like :meth:`get`.
        """
        with self._lock:
            if name not in self._views:
                raise DocumentNotFound(f"no view {name!r} in database {self.name!r}")
            _map_function, index = self._views[name]
            rows: List[ViewRow] = []
            for doc_id in sorted(index):
                for emitted_key, emitted_value in index[doc_id]:
                    if key is not None and emitted_key != key:
                        continue
                    rows.append(ViewRow(doc_id, emitted_key, emitted_value))
        if include_docs:
            resolved = []
            for row in rows:
                document = self.get(row.doc_id)
                resolved.append(ViewRow(row.doc_id, row.key, document))
            return resolved
        return [self._relabel_row(row) for row in rows]

    def _relabel_row(self, row: ViewRow) -> ViewRow:
        with self._lock:
            stored = self._documents.get(row.doc_id)
        if stored is None or not stored.sidecar:
            return row
        # Re-derive the emission from the labeled document so emitted
        # values keep field labels.
        labeled = json_codec.decode_document(stored.body, stored.sidecar)
        map_function = None
        for name, (candidate, index) in self._views.items():
            if row.doc_id in index and (row.key, row.value) in index[row.doc_id]:
                map_function = candidate
                break
        if map_function is None:
            return row
        for emitted_key, emitted_value in map_function(labeled):
            if strip_labels(emitted_key) == row.key and strip_labels(emitted_value) == row.value:
                return ViewRow(row.doc_id, emitted_key, emitted_value)
        return row

    def _index_document(self, stored: _StoredDocument) -> None:
        for name in self._views:
            self._index_one(name, stored)

    def _index_one(self, name: str, stored: _StoredDocument) -> None:
        map_function, index = self._views[name]
        index.pop(stored.doc_id, None)
        if stored.deleted:
            return
        emissions = []
        document = dict(stored.body) if isinstance(stored.body, dict) else stored.body
        if isinstance(document, dict):
            document["_id"] = stored.doc_id
        try:
            for emitted in map_function(document):
                emitted_key, emitted_value = emitted
                emissions.append((strip_labels(emitted_key), strip_labels(emitted_value)))
        except (KeyError, TypeError, AttributeError):
            # CouchDB semantics: a map function that fails on a document
            # simply emits nothing for it.
            emissions = []
        if emissions:
            index[stored.doc_id] = emissions

    # -- changes feed ------------------------------------------------------------------

    def _record_change(self, stored: _StoredDocument) -> None:
        self._seq += 1
        self._changes.append(Change(self._seq, stored.doc_id, stored.rev, stored.deleted))

    @property
    def update_seq(self) -> int:
        with self._lock:
            return self._seq

    def changes(self, since: int = 0) -> List[Change]:
        """Changes after sequence *since*, deduplicated to the latest per doc."""
        with self._lock:
            recent = [change for change in self._changes if change.seq > since]
        latest: Dict[str, Change] = {}
        for change in recent:
            latest[change.doc_id] = change
        return sorted(latest.values(), key=lambda change: change.seq)

    def raw_document(self, doc_id: str) -> Optional[_StoredDocument]:
        """The stored form (replication reads this to push body+sidecar)."""
        with self._lock:
            return self._documents.get(doc_id)

    # -- maintenance -------------------------------------------------------------

    def document_labels(self, doc_id: str) -> Any:
        """The combined label set of a stored document."""
        document = self.get(doc_id)
        return labels_of({k: v for k, v in document.items() if k not in ("_id", "_rev")})


class DocumentStore:
    """A server holding named databases (the CouchDB instance analogue)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._databases: Dict[str, Database] = {}

    def create(self, name: str, read_only: bool = False) -> Database:
        with self._lock:
            if name in self._databases:
                raise SafeWebError(f"database {name!r} already exists")
            database = Database(name, read_only=read_only)
            self._databases[name] = database
            return database

    def get(self, name: str) -> Database:
        with self._lock:
            try:
                return self._databases[name]
            except KeyError:
                raise DocumentNotFound(f"no database {name!r}") from None

    def get_or_create(self, name: str, read_only: bool = False) -> Database:
        with self._lock:
            if name not in self._databases:
                self._databases[name] = Database(name, read_only=read_only)
            return self._databases[name]

    def drop(self, name: str) -> None:
        with self._lock:
            self._databases.pop(name, None)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._databases)
