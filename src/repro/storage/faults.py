"""Deterministic fault injection for the durability subsystem.

The crash-recovery property suite (``tests/property/test_crash_recovery.py``)
needs to stop the durable store at *exactly* one instrumented instant —
mid-append, between an append and its fsync, between a snapshot rename
and the WAL reset, between two shards' batch fsyncs — and then observe
what a recovery from the surviving files yields. Real kill -9 testing
cannot hit those windows deterministically; this module makes every
window a named **crash point**.

How it composes:

* durable-layer code (:mod:`repro.storage.wal`,
  :mod:`repro.storage.recovery`) calls ``faults.hit("wal.append.after")``
  etc. at each instrumented instant, opens files through
  :meth:`FaultInjector.open` and renames through
  :meth:`FaultInjector.replace`. With the default
  :data:`NULL_FAULTS` injector every call is a cheap no-op — production
  stores pay one attribute check per point;
* a test arms the injector (:meth:`FaultInjector.crash_at`,
  :meth:`~FaultInjector.fail_fsync`, :meth:`~FaultInjector.torn_append`)
  and drives writes until :class:`SimulatedCrash` propagates;
* the "crashed process" is then discarded and the test reopens the data
  directory. Two crash models are supported:

  - **process crash** (default): everything ``write()``-n survives —
    the page cache outlives the process;
  - **power loss**: the test calls :meth:`FaultInjector.power_loss`
    first, which truncates every tracked file back to its last fsynced
    length (plus an optional torn tail of partial bytes), modelling a
    machine failure that discards the un-synced page cache.

:class:`SimulatedCrash` subclasses :class:`BaseException` on purpose:
generic ``except Exception`` containment (the continuous replicator's
retry loop, view indexing) must never swallow a simulated crash.

The point/arming machinery is shared with the event tier: this module's
:class:`FaultInjector` extends :class:`repro.faults.ChaosInjector` with
the durability-specific fault shapes (fsync failures, torn appends, the
tracked-file power-loss model); :class:`SimulatedCrash` itself lives in
:mod:`repro.faults` and is re-exported here unchanged.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.faults import ChaosInjector, SimulatedCrash

__all__ = [
    "SimulatedCrash",
    "TrackedFile",
    "FaultInjector",
    "NULL_FAULTS",
    "CRASH_POINTS",
]


class TrackedFile:
    """A writable file whose durable (fsynced) length is tracked.

    All durability-layer writes go through one of these so a simulated
    power loss knows how much of each file the "disk" had actually
    persisted. With no injector attached it degrades to a plain binary
    file plus an ``os.fsync``.
    """

    def __init__(self, path: str, mode: str, injector: Optional["FaultInjector"] = None):
        self._path = os.fspath(path)
        # Unbuffered: every write() is a syscall into the OS page cache,
        # so a process crash (as opposed to power loss) loses nothing —
        # the model the injector's close_all()/power_loss() split assumes.
        self._file = open(self._path, mode, buffering=0)
        self._injector = injector
        size = self._file.tell() if "a" in mode else 0
        self.written = size
        self.durable = size
        if injector is not None:
            injector._track(self)

    @property
    def path(self) -> str:
        return self._path

    def write(self, data: bytes) -> int:
        self._file.write(data)
        self.written += len(data)
        return len(data)

    def flush(self) -> None:
        self._file.flush()

    def fsync(self) -> None:
        """Flush and fsync; advances the durable watermark.

        An armed :meth:`FaultInjector.fail_fsync` raises here *without*
        advancing the watermark — the caller cannot know how much (if
        anything) reached the platter, exactly like a real ``EIO``.
        """
        self._file.flush()
        if self._injector is not None:
            self._injector._fsync_attempt(self._path)
        os.fsync(self._file.fileno())
        self.durable = self.written

    def truncate_to(self, length: int) -> None:
        self._file.flush()
        self._file.truncate(length)
        self.written = length
        self.durable = min(self.durable, length)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
        if self._injector is not None:
            self._injector._untrack(self)

    @property
    def closed(self) -> bool:
        return self._file.closed


class FaultInjector(ChaosInjector):
    """Armable crash points, fsync failures and torn appends.

    One injector instruments one store (all its shards and checkpoint
    files). Points are hit in deterministic order because every write
    path is either single-threaded in the tests or serialised by the
    shard lock. Crash-point arming and the ``hit``/``hits``/
    ``crashed_at`` surface are inherited from
    :class:`repro.faults.ChaosInjector`.
    """

    def __init__(self) -> None:
        super().__init__()
        self._fsync_failures = 0
        self._torn_keep: Optional[int] = None
        #: path -> live TrackedFile
        self._open_files: Dict[str, TrackedFile] = {}
        #: path -> (durable, written) for every file ever tracked.
        self._ledger: Dict[str, Tuple[int, int]] = {}

    # -- arming ----------------------------------------------------------------

    def fail_fsync(self, times: int = 1) -> "FaultInjector":
        """Make the next *times* fsync attempts raise ``OSError``."""
        with self._lock:
            self._fsync_failures += times
        return self

    def torn_append(self, keep_bytes: Optional[int] = None) -> "FaultInjector":
        """Crash mid-append: the next WAL append writes only a prefix of
        its frame (*keep_bytes*, default half) before the crash — the
        torn-tail record recovery must tolerate."""
        with self._lock:
            self._torn_keep = -1 if keep_bytes is None else keep_bytes
        return self

    # -- instrumentation callbacks ------------------------------------------------

    def take_torn_keep(self, frame_length: int) -> Optional[int]:
        """Bytes of the next frame to write before crashing, if armed."""
        with self._lock:
            keep = self._torn_keep
            if keep is None:
                return None
            self._torn_keep = None
        return frame_length // 2 if keep < 0 else min(keep, frame_length)

    def _fsync_attempt(self, path: str) -> None:
        with self._lock:
            if self._fsync_failures > 0:
                self._fsync_failures -= 1
                raise OSError(f"injected fsync failure on {path}")

    # -- file tracking -------------------------------------------------------------

    def open(self, path, mode: str) -> TrackedFile:
        return TrackedFile(path, mode, injector=self)

    def replace(self, source, destination) -> None:
        """``os.replace`` that keeps the durable-length ledger coherent.

        The rename itself is modelled as atomic and durable (no
        directory-entry loss is simulated; see docs/DURABILITY.md)."""
        os.replace(source, destination)
        with self._lock:
            entry = self._ledger.pop(os.fspath(source), None)
            if entry is not None:
                self._ledger[os.fspath(destination)] = entry

    def _track(self, tracked: TrackedFile) -> None:
        with self._lock:
            self._open_files[tracked.path] = tracked
            self._sync_ledger(tracked)

    def _untrack(self, tracked: TrackedFile) -> None:
        with self._lock:
            self._sync_ledger(tracked)
            self._open_files.pop(tracked.path, None)

    def _sync_ledger(self, tracked: TrackedFile) -> None:
        self._ledger[tracked.path] = (tracked.durable, tracked.written)

    # -- post-crash disk models ----------------------------------------------------

    def power_loss(self, keep_tail_bytes: int = 0) -> None:
        """Model a machine failure: discard every byte past each file's
        last fsync. *keep_tail_bytes* preserves that many un-synced tail
        bytes (producing a torn final record) — the page cache flushes
        some sectors of a write and loses the rest.

        Call after the :class:`SimulatedCrash` propagated and before
        recovery reopens the directory.
        """
        with self._lock:
            for tracked in list(self._open_files.values()):
                tracked.close()
            for path, (durable, written) in self._ledger.items():
                if not os.path.exists(path):
                    continue
                keep = min(durable + max(keep_tail_bytes, 0), written)
                with open(path, "r+b") as handle:
                    handle.truncate(keep)

    def close_all(self) -> None:
        """Close every live tracked file (a process crash drops handles)."""
        with self._lock:
            for tracked in list(self._open_files.values()):
                tracked.close()

    def durable_lengths(self) -> Dict[str, Tuple[int, int]]:
        """Snapshot of the (durable, written) ledger, for assertions."""
        with self._lock:
            for tracked in self._open_files.values():
                self._sync_ledger(tracked)
            return dict(self._ledger)


class _NullInjector(FaultInjector):
    """The production no-op injector: crash points cost one method call,
    files are plain tracked files, nothing is armed. Arming it is a
    programming error."""

    def crash_at(self, point: str, hit: int = 1) -> "FaultInjector":  # pragma: no cover
        raise RuntimeError("arm a dedicated FaultInjector, not NULL_FAULTS")

    def fail_at(self, point, on=1, error=None):  # pragma: no cover
        raise RuntimeError("arm a dedicated FaultInjector, not NULL_FAULTS")

    def delay_at(self, point, seconds, on=1):  # pragma: no cover
        raise RuntimeError("arm a dedicated FaultInjector, not NULL_FAULTS")

    def fail_fsync(self, times: int = 1) -> "FaultInjector":  # pragma: no cover
        raise RuntimeError("arm a dedicated FaultInjector, not NULL_FAULTS")

    def torn_append(self, keep_bytes: Optional[int] = None) -> "FaultInjector":  # pragma: no cover
        raise RuntimeError("arm a dedicated FaultInjector, not NULL_FAULTS")

    def hit(self, point: str) -> None:
        return None

    def take_torn_keep(self, frame_length: int) -> Optional[int]:
        return None

    def open(self, path, mode: str) -> TrackedFile:
        return TrackedFile(path, mode, injector=None)

    def replace(self, source, destination) -> None:
        os.replace(source, destination)

    def _fsync_attempt(self, path: str) -> None:
        return None


#: Shared no-op injector used whenever no faults are requested.
NULL_FAULTS = _NullInjector()


#: The instrumented crash points, in the order a write path can reach
#: them. docs/DURABILITY.md renders this as the crash-point matrix; the
#: property suite iterates it.
CRASH_POINTS = (
    "wal.append.before",   # nothing written yet
    "wal.append.after",    # frame written, not fsynced
    "wal.sync.before",     # about to fsync a group-commit batch
    "wal.sync.after",      # batch durable, ack not yet returned
    "snapshot.begin",      # snapshot triggered, nothing written
    "snapshot.written",    # tmp file written + fsynced, not renamed
    "snapshot.renamed",    # snapshot live, WAL not yet reset
    "wal.reset",           # WAL truncated after a snapshot
    "checkpoint.before",   # batch applied, checkpoint not yet persisted
    "checkpoint.after",    # checkpoint persisted
)
