"""The seed document store, preserved as an executable specification.

:class:`ReferenceDatabase` is the original single-dict store this repo
seeded with: full-scan view reads, per-row relabeling of labeled view
rows at query time, doc-at-a-time replication input. The production
store (:mod:`repro.storage.docstore`) replaced it with sharding and
incremental indexes, but its *enforcement semantics* — which rows a
reader sees, which labels they carry, how ``update_seq`` advances —
are pinned to this implementation:

* ``tests/property/test_sharded_store.py`` drives random operation
  sequences through both stores and asserts identical results;
* ``tests/property/test_crash_recovery.py`` uses it the same way for
  durability: a store recovered after a simulated crash must be
  observation-equivalent to this class replaying a prefix of the
  acknowledged write history. The reference itself stays purely
  in-memory — it is the specification recovery is judged against,
  never a durable store;
* ``scripts/bench_storage.py`` measures this class as the "seed path"
  baseline in every ``BENCH_storage.json`` snapshot.

Do not "improve" this module; it is deliberately the slow, obviously
correct version (the same role ``match_topic`` plays for the PR 1 topic
trie).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import DocumentConflict, DocumentNotFound, ReadOnlyError, SafeWebError
from repro.storage.docstore import Change, ViewRow, _next_rev, _StoredDocument
from repro.taint import json_codec
from repro.taint.labeled import labels_of, strip_labels


class ReferenceDatabase:
    """The seed :class:`~repro.storage.docstore.Database`, verbatim."""

    def __init__(self, name: str, read_only: bool = False):
        self.name = name
        self.read_only = read_only
        self._lock = threading.RLock()
        self._documents: Dict[str, _StoredDocument] = {}
        self._seq = 0
        self._changes: List[Change] = []
        # view name -> (map function, doc_id -> [(key, value)])
        self._views: Dict[str, Tuple[Callable, Dict[str, List[Tuple[Any, Any]]]]] = {}

    # -- writes ----------------------------------------------------------------

    def put(self, document: Dict[str, Any]) -> Dict[str, Any]:
        self._guard_writable()
        if "_id" not in document:
            raise SafeWebError("document requires an _id")
        doc_id = strip_labels(str(document["_id"]))
        presented_rev = document.get("_rev")
        body = {k: v for k, v in document.items() if k not in ("_id", "_rev")}
        plain, sidecar = json_codec.encode_document(body)
        canonical = json.dumps(plain, sort_keys=True)

        with self._lock:
            existing = self._documents.get(doc_id)
            if existing is not None and not existing.deleted:
                if presented_rev != existing.rev:
                    raise DocumentConflict(
                        f"revision mismatch for {doc_id!r}",
                        doc_id=doc_id,
                        current_rev=existing.rev,
                    )
                rev = _next_rev(existing.rev, canonical)
            else:
                if presented_rev is not None and existing is None:
                    raise DocumentConflict(
                        f"document {doc_id!r} does not exist", doc_id=doc_id
                    )
                rev = _next_rev(existing.rev if existing else None, canonical)
            stored = _StoredDocument(doc_id, rev, plain, sidecar)
            self._documents[doc_id] = stored
            self._record_change(stored)
            self._index_document(stored)
        return {"id": doc_id, "rev": rev}

    def delete(self, doc_id: str, rev: str) -> Dict[str, Any]:
        self._guard_writable()
        with self._lock:
            existing = self._documents.get(doc_id)
            if existing is None or existing.deleted:
                raise DocumentNotFound(f"no document {doc_id!r}")
            if existing.rev != rev:
                raise DocumentConflict(
                    f"revision mismatch for {doc_id!r}", doc_id=doc_id, current_rev=existing.rev
                )
            tombstone_rev = _next_rev(existing.rev, json.dumps(None))
            stored = _StoredDocument(doc_id, tombstone_rev, None, {}, deleted=True)
            self._documents[doc_id] = stored
            self._record_change(stored)
            self._index_document(stored)
        return {"id": doc_id, "rev": tombstone_rev}

    def replication_put(
        self,
        doc_id: str,
        rev: str,
        body: Any,
        sidecar: Dict[str, List[str]],
        deleted: bool = False,
    ) -> None:
        with self._lock:
            stored = _StoredDocument(doc_id, rev, body, dict(sidecar), deleted)
            self._documents[doc_id] = stored
            self._record_change(stored)
            self._index_document(stored)

    def _guard_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyError(
                f"database {self.name!r} is read-only (S1: DMZ replicas reject writes)"
            )

    # -- reads ------------------------------------------------------------------

    def get(self, doc_id: str) -> Dict[str, Any]:
        with self._lock:
            stored = self._documents.get(doc_id)
        if stored is None or stored.deleted:
            raise DocumentNotFound(f"no document {doc_id!r}")
        body = json_codec.decode_document(stored.body, stored.sidecar)
        result = dict(body)
        result["_id"] = stored.doc_id
        result["_rev"] = stored.rev
        return result

    def get_or_none(self, doc_id: str) -> Optional[Dict[str, Any]]:
        try:
            return self.get(doc_id)
        except DocumentNotFound:
            return None

    def __contains__(self, doc_id: str) -> bool:
        with self._lock:
            stored = self._documents.get(doc_id)
        return stored is not None and not stored.deleted

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for doc in self._documents.values() if not doc.deleted)

    def all_doc_ids(self) -> List[str]:
        """Seed ordering: lexicographic by id (the production store
        switched to stable insertion order; see
        :meth:`repro.storage.docstore.Database.all_doc_ids`)."""
        with self._lock:
            return sorted(
                doc_id for doc_id, doc in self._documents.items() if not doc.deleted
            )

    def all_docs(self) -> List[Dict[str, Any]]:
        return [self.get(doc_id) for doc_id in self.all_doc_ids()]

    # -- views ---------------------------------------------------------------------

    def define_view(self, name: str, map_function: Callable[[Dict[str, Any]], Iterable]) -> None:
        with self._lock:
            index: Dict[str, List[Tuple[Any, Any]]] = {}
            self._views[name] = (map_function, index)
            for stored in self._documents.values():
                self._index_one(name, stored)

    def view(
        self,
        name: str,
        key: Any = None,
        include_docs: bool = False,
    ) -> List[ViewRow]:
        with self._lock:
            if name not in self._views:
                raise DocumentNotFound(f"no view {name!r} in database {self.name!r}")
            _map_function, index = self._views[name]
            rows: List[ViewRow] = []
            for doc_id in sorted(index):
                for emitted_key, emitted_value in index[doc_id]:
                    if key is not None and emitted_key != key:
                        continue
                    rows.append(ViewRow(doc_id, emitted_key, emitted_value))
        if include_docs:
            resolved = []
            for row in rows:
                document = self.get(row.doc_id)
                resolved.append(ViewRow(row.doc_id, row.key, document))
            return resolved
        return [self._relabel_row(row) for row in rows]

    def _relabel_row(self, row: ViewRow) -> ViewRow:
        with self._lock:
            stored = self._documents.get(row.doc_id)
        if stored is None or not stored.sidecar:
            return row
        # Re-derive the emission from the labeled document so emitted
        # values keep field labels.
        labeled = json_codec.decode_document(stored.body, stored.sidecar)
        map_function = None
        for name, (candidate, index) in self._views.items():
            if row.doc_id in index and (row.key, row.value) in index[row.doc_id]:
                map_function = candidate
                break
        if map_function is None:
            return row
        for emitted_key, emitted_value in map_function(labeled):
            if strip_labels(emitted_key) == row.key and strip_labels(emitted_value) == row.value:
                return ViewRow(row.doc_id, emitted_key, emitted_value)
        return row

    def _index_document(self, stored: _StoredDocument) -> None:
        for name in self._views:
            self._index_one(name, stored)

    def _index_one(self, name: str, stored: _StoredDocument) -> None:
        map_function, index = self._views[name]
        index.pop(stored.doc_id, None)
        if stored.deleted:
            return
        emissions = []
        document = dict(stored.body) if isinstance(stored.body, dict) else stored.body
        if isinstance(document, dict):
            document["_id"] = stored.doc_id
        try:
            for emitted in map_function(document):
                emitted_key, emitted_value = emitted
                emissions.append((strip_labels(emitted_key), strip_labels(emitted_value)))
        except (KeyError, TypeError, AttributeError):
            # CouchDB semantics: a map function that fails on a document
            # simply emits nothing for it.
            emissions = []
        if emissions:
            index[stored.doc_id] = emissions

    # -- changes feed ------------------------------------------------------------------

    def _record_change(self, stored: _StoredDocument) -> None:
        self._seq += 1
        self._changes.append(Change(self._seq, stored.doc_id, stored.rev, stored.deleted))

    @property
    def update_seq(self) -> int:
        with self._lock:
            return self._seq

    def changes(self, since: int = 0) -> List[Change]:
        with self._lock:
            recent = [change for change in self._changes if change.seq > since]
        latest: Dict[str, Change] = {}
        for change in recent:
            latest[change.doc_id] = change
        return sorted(latest.values(), key=lambda change: change.seq)

    def raw_document(self, doc_id: str) -> Optional[_StoredDocument]:
        with self._lock:
            return self._documents.get(doc_id)

    # -- maintenance -------------------------------------------------------------

    def document_labels(self, doc_id: str) -> Any:
        document = self.get(doc_id)
        return labels_of({k: v for k, v in document.items() if k not in ("_id", "_rev")})


def reference_replicate(source: ReferenceDatabase, target) -> int:
    """Seed-style doc-at-a-time replication (the bench baseline)."""
    copied = 0
    for change in source.changes():
        stored = source.raw_document(change.doc_id)
        if stored is None:
            continue
        target.replication_put(
            stored.doc_id, stored.rev, stored.body, stored.sidecar, deleted=stored.deleted
        )
        copied += 1
    return copied
