"""The SafeWeb web middleware: the frontend "safety net" (paper §4.4).

Installed onto a :class:`~repro.web.framework.SafeWebApp`, it adds the
two enforcement hooks of Figure 3:

* **before** every route (steps 1): authenticate the request via HTTP
  Basic and attach the user's privileges from the web database;
* **after** every route (step 4): compare the response's labels with the
  user's privileges — *unless the user has the required privileges, the
  operation is aborted* — and, for HTML responses, reject unsanitised
  user input (the XSS taint check).

Timing of each enforcement component is recorded into
``request.env["safeweb.timings"]`` so the Figure 5 breakdown benchmark
can read real measurements rather than re-instrumenting the code.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from repro.core.audit import AuditLog, default_audit_log
from repro.core.labels import LabelSet
from repro.exceptions import DisclosureError
from repro.taint.sanitize import SanitisationError
from repro.web.auth import BasicAuthenticator
from repro.web.framework import SafeWebApp
from repro.web.request import Request
from repro.web.response import Response

TIMINGS_KEY = "safeweb.timings"


def record_timing(request: Request, component: str, seconds: float) -> None:
    """Accumulate a per-request component timing (Figure 5 support)."""
    timings = request.env.setdefault(TIMINGS_KEY, {})
    timings[component] = timings.get(component, 0.0) + seconds


class timed:  # noqa: N801 - context-manager idiom, reads like a function
    """``with timed(request, "template_rendering"): …`` timing helper."""

    __slots__ = ("_request", "_component", "_started")

    def __init__(self, request: Request, component: str):
        self._request = request
        self._component = component

    def __enter__(self):
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        record_timing(self._request, self._component, time.perf_counter() - self._started)


class SafeWebMiddleware:
    """Authentication + response-time label validation."""

    def __init__(
        self,
        authenticator: BasicAuthenticator,
        audit: Optional[AuditLog] = None,
        public_paths: Iterable[str] = (),
        check_labels: bool = True,
        check_taint: bool = True,
    ):
        self._authenticator = authenticator
        self._audit = audit if audit is not None else default_audit_log()
        self._public_paths = set(public_paths)
        self.check_labels = check_labels
        self.check_taint = check_taint

    # -- installation --------------------------------------------------------

    def install(self, app: SafeWebApp) -> SafeWebApp:
        app.before(self.authenticate_request)
        app.after(self.check_response)
        return app

    # -- the before hook (Figure 3, step 1) --------------------------------------

    def authenticate_request(self, request: Request) -> None:
        if request.path in self._public_paths:
            return
        if request.user is not None:
            # An earlier authentication layer (e.g. cookie sessions)
            # already resolved the principal with its privileges.
            return
        started = time.perf_counter()
        row = self._authenticator.verify(request.header("authorization"))
        record_timing(request, "authentication", time.perf_counter() - started)

        started = time.perf_counter()
        request.user = self._authenticator.fetch_privileges(row)
        record_timing(request, "privilege_fetching", time.perf_counter() - started)
        self._audit.allowed("frontend", "authenticate", request.user.name)

    # -- the after hook (Figure 3, step 4) -----------------------------------------

    def check_response(self, request: Request, response: Response) -> Optional[Response]:
        # Public paths skip *authentication*, never the response checks:
        # a route marked public by mistake (the "missing after-hook"
        # corpus injection) must still be unable to emit labelled data —
        # with no principal attached, any confidentiality label denies.
        started = time.perf_counter()
        try:
            if self.check_labels:
                self._check_labels(request, response)
            if self.check_taint:
                self._check_taint(request, response)
        finally:
            record_timing(request, "label_check", time.perf_counter() - started)
        return None

    def _check_labels(self, request: Request, response: Response) -> None:
        labels = response.labels
        # Interned lattice: the confidentiality partition is a
        # precomputed frozenset, so the common all-public response
        # exits on a single attribute read.
        if not labels.confidentiality:
            return
        principal = request.user
        if principal is None:
            self._audit.denied(
                "frontend",
                "respond",
                "anonymous",
                labels=labels,
                detail=f"{request.method} {request.path}: labelled data, no principal",
            )
            raise DisclosureError(
                "labelled response with no authenticated principal",
                missing_labels=labels.confidentiality,
            )
        # Fast path: clearance decisions are memoized per (labels,
        # privilege-set) — with the cached authenticator the privilege
        # set instance persists across requests, so repeat page loads
        # resolve the whole check on one dictionary hit.
        privileges = principal.privileges
        if privileges.clearance_covers(labels):
            self._audit.allowed("frontend", "respond", principal.name, labels=labels)
            return
        missing = privileges.missing_clearance(labels)
        self._audit.denied(
            "frontend",
            "respond",
            principal.name,
            labels=LabelSet(missing),
            detail=f"{request.method} {request.path}",
        )
        raise DisclosureError(
            f"user {principal.name!r} lacks privileges for "
            f"{sorted(label.uri for label in missing)}",
            missing_labels=missing,
        )

    def _check_taint(self, request: Request, response: Response) -> None:
        if not response.content_type.startswith("text/html"):
            return
        if response.user_tainted:
            principal = request.user.name if request.user else "anonymous"
            self._audit.denied(
                "frontend",
                "respond",
                principal,
                detail=f"{request.method} {request.path}: unsanitised user input in HTML",
            )
            raise SanitisationError(
                "unsanitised user input reached an HTML response"
            )
