"""HTTP response model.

The body may be (and for confidential data, is) a labeled string; the
SafeWeb middleware reads :func:`repro.taint.labels_of` on it at the
response boundary. ``finalize`` is only called after that check passed,
which is the single place labels are stripped for the wire.
"""

from __future__ import annotations

from http import HTTPStatus
from typing import Any, Dict, Optional, Tuple

from repro.core.labels import LabelSet
from repro.taint import labels_of, strip_labels
from repro.taint.labeled import is_user_tainted

_REASONS = {status.value: status.phrase for status in HTTPStatus}


class Response:
    """A mutable response under construction."""

    def __init__(
        self,
        body: Any = "",
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
        content_type: Optional[str] = None,
    ):
        self.status = status
        self.headers: Dict[str, str] = dict(headers or {})
        self.body = body
        if content_type is not None:
            self.headers["Content-Type"] = content_type
        self.headers.setdefault("Content-Type", "text/html; charset=utf-8")

    # -- introspection used by the middleware --------------------------------

    @property
    def labels(self) -> LabelSet:
        """The labels carried by the body (containers combined)."""
        return labels_of(self.body)

    @property
    def user_tainted(self) -> bool:
        return is_user_tainted(self.body)

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    def set_content_type(self, value: str) -> None:
        self.headers["Content-Type"] = value

    # -- serialisation ----------------------------------------------------------

    @property
    def reason(self) -> str:
        return _REASONS.get(self.status, "Unknown")

    def body_text(self) -> str:
        if isinstance(self.body, bytes):
            return self.body.decode("utf-8", "replace")
        return "" if self.body is None else str(self.body)

    def finalize(self) -> Tuple[int, Dict[str, str], bytes]:
        """Strip labels and encode for the wire (post-check only)."""
        if isinstance(self.body, (bytes, bytearray)):
            # Byte bodies carry no labels and must reach the wire
            # unmangled (a UTF-8 round-trip would corrupt binary data).
            payload = bytes(self.body)
        else:
            text = strip_labels(self.body_text())
            payload = str(text).encode("utf-8")
        headers = dict(self.headers)
        headers["Content-Length"] = str(len(payload))
        return self.status, headers, payload

    @classmethod
    def coerce(cls, value: Any) -> "Response":
        """Normalise handler return values (Sinatra-style flexibility)."""
        if isinstance(value, Response):
            return value
        if isinstance(value, tuple) and len(value) == 2 and isinstance(value[0], int):
            return cls(body=value[1], status=value[0])
        if isinstance(value, tuple) and len(value) == 3 and isinstance(value[0], int):
            return cls(body=value[2], status=value[0], headers=value[1])
        if value is None:
            return cls(body="", status=204)
        return cls(body=value)

    def __repr__(self) -> str:
        return f"Response({self.status}, {self.content_type!r}, {len(self.body_text())} chars)"
