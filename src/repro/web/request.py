"""HTTP request model.

Every value that originates from the client — query parameters, form
fields, route captures, headers — is marked with the user-input taint bit
(:func:`repro.taint.mark_user_input`), the analogue of Ruby tainting
request data (§4.4 last paragraph). Application code must sanitise these
values before they reach HTML responses or SQL strings.
"""

from __future__ import annotations

import urllib.parse
from typing import Any, Dict, Optional, Union

from repro.core.principals import UserPrincipal
from repro.taint import mark_user_input


def _parse_query(query: str) -> Dict[str, str]:
    parsed: Dict[str, str] = {}
    for key, value in urllib.parse.parse_qsl(query, keep_blank_values=True):
        parsed[key] = value
    return parsed


class Request:
    """One HTTP request as seen by route handlers."""

    def __init__(
        self,
        method: str,
        path: str,
        headers: Optional[Dict[str, str]] = None,
        body: Union[str, bytes] = "",
        remote_addr: str = "127.0.0.1",
    ):
        self.method = method.upper()
        parsed = urllib.parse.urlsplit(path)
        self.path = parsed.path or "/"
        self.headers = {str(k).lower(): str(v) for k, v in (headers or {}).items()}
        # Bodies arrive from the socket as bytes and are decoded lazily:
        # a binary POST must not crash the server just because its
        # payload isn't UTF-8 (the handler may never look at it as text).
        if isinstance(body, (bytes, bytearray)):
            self.raw_body: bytes = bytes(body)
            self._body_text: Optional[str] = None
        else:
            self.raw_body = body.encode("utf-8")
            self._body_text = mark_user_input(body) if body else ""
        self.remote_addr = remote_addr

        #: Query-string parameters (user-tainted).
        self.query: Dict[str, str] = {
            key: mark_user_input(value) for key, value in _parse_query(parsed.query).items()
        }
        #: Route captures merged with query and form params (user-tainted);
        #: populated by the router.
        self.params: Dict[str, Any] = dict(self.query)
        if self.headers.get("content-type", "").startswith("application/x-www-form-urlencoded"):
            form_text = self.raw_body.decode("utf-8", "replace")
            for key, value in _parse_query(form_text).items():
                self.params[key] = mark_user_input(value)

        #: The authenticated principal; set by the SafeWeb middleware.
        self.user: Optional[UserPrincipal] = None
        #: Scratch space for filters/handlers (Sinatra's @variables).
        self.env: Dict[str, Any] = {}

    @property
    def body(self) -> str:
        """The body as user-tainted text (decoded on first access)."""
        if self._body_text is None:
            decoded = self.raw_body.decode("utf-8", "replace")
            self._body_text = mark_user_input(decoded) if decoded else ""
        return self._body_text

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    def add_route_params(self, captures: Dict[str, str]) -> None:
        for key, value in captures.items():
            self.params[key] = mark_user_input(urllib.parse.unquote(value))

    @property
    def is_json(self) -> bool:
        return self.headers.get("content-type", "").startswith("application/json")

    def __repr__(self) -> str:
        return f"Request({self.method} {self.path})"
