"""A Sinatra-like web framework (the paper's frontend substrate).

SafeWeb uses Sinatra "for its well-defined interception points of HTTP
requests and responses" (§4.4). This framework reproduces those points:

* routes declared with ``@app.get("/records/:mid")`` etc., captures
  exposed through ``request.params`` (user-tainted);
* ``before`` filters running ahead of every route (where the SafeWeb
  middleware authenticates and attaches privileges);
* ``after`` filters running on every response (where the label check
  happens);
* ``halt(status, body)`` for immediate termination, mirroring Sinatra.

The app is a plain callable ``Request -> Response`` so it runs equally
under the bundled HTTP server, the in-process test client and the
benchmarks.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import (
    AuthenticationError,
    DisclosureError,
    HaltRequest,
    SafeWebError,
)
from repro.taint.sanitize import SanitisationError
from repro.web.request import Request
from repro.web.response import Response
from repro.web.routing import TrieRouter, _PARAM_RE

#: ``request.env`` key carrying the matched route's pattern (read by the
#: page cache to key entries on the route rather than the raw path).
ROUTE_ENV_KEY = "safeweb.route"


def halt(status: int = 500, body: str = "", headers: Optional[Dict[str, str]] = None):
    """Immediately stop route processing (Sinatra's ``halt``)."""
    raise HaltRequest(status, body, headers)


def _compile_route(pattern: str) -> re.Pattern:
    if not pattern.startswith("/"):
        raise SafeWebError(f"route pattern must start with '/': {pattern!r}")
    regex = ""
    position = 0
    for match in _PARAM_RE.finditer(pattern):
        regex += re.escape(pattern[position : match.start()])
        regex += f"(?P<{match.group(1)}>[^/]+)"
        position = match.end()
    regex += re.escape(pattern[position:])
    if regex.endswith(re.escape("/*")):
        regex = regex[: -len(re.escape("/*"))] + "(?P<splat>/.*)?"
    return re.compile(f"^{regex}$")


class Route:
    __slots__ = ("method", "pattern", "regex", "handler")

    def __init__(self, method: str, pattern: str, handler: Callable):
        self.method = method
        self.pattern = pattern
        self.regex = _compile_route(pattern)
        self.handler = handler

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        if method != self.method:
            return None
        found = self.regex.match(path)
        if found is None:
            return None
        return {k: v for k, v in found.groupdict().items() if v is not None}


class SafeWebApp:
    """Route table + filter chain; instances are WSGI-free callables.

    Dispatch runs on a :class:`~repro.web.routing.TrieRouter` compiled
    lazily from the route table (and invalidated by further route
    registration); the seed linear regex scan is preserved as
    :meth:`match_reference` and stays property-tested equivalent. Set
    ``compiled_router=False`` to dispatch through the reference matcher
    (the benchmarks' seed configuration).
    """

    def __init__(self, name: str = "safeweb-app", compiled_router: bool = True):
        self.name = name
        self.compiled_router = compiled_router
        self._routes: List[Route] = []
        self._trie: Optional[TrieRouter] = None
        self._before: List[Callable[[Request], None]] = []
        self._after: List[Callable[[Request, Response], Optional[Response]]] = []
        self._error_handlers: Dict[type, Callable] = {}

    # -- declaration -------------------------------------------------------------

    def route(self, method: str, pattern: str):
        def decorator(handler: Callable):
            self._routes.append(Route(method.upper(), pattern, handler))
            self._trie = None  # recompiled lazily on next dispatch
            return handler

        return decorator

    def get(self, pattern: str):
        return self.route("GET", pattern)

    def post(self, pattern: str):
        return self.route("POST", pattern)

    def put(self, pattern: str):
        return self.route("PUT", pattern)

    def delete(self, pattern: str):
        return self.route("DELETE", pattern)

    def before(self, func: Callable[[Request], None]):
        """Register a filter to run before every route."""
        self._before.append(func)
        return func

    def after(self, func: Callable[[Request, Response], Optional[Response]]):
        """Register a filter to run on every response."""
        self._after.append(func)
        return func

    def error(self, exception_type: type):
        """Register a handler for an exception class."""

        def decorator(func: Callable):
            self._error_handlers[exception_type] = func
            return func

        return decorator

    # -- matching -----------------------------------------------------------------

    def match_reference(
        self, method: str, path: str
    ) -> Optional[Tuple["Route", Dict[str, str]]]:
        """The seed matcher: linear scan, one regex per route.

        Kept as the executable specification the trie is property-tested
        against (``tests/property/test_router.py``).
        """
        for route in self._routes:
            captures = route.match(method, path)
            if captures is not None:
                return route, captures
        return None

    def _compiled(self) -> TrieRouter:
        trie = self._trie
        if trie is None:
            trie = TrieRouter()
            for order, route in enumerate(self._routes):
                trie.add(route.method, route.pattern, route, order)
            self._trie = trie
        return trie

    def match(self, method: str, path: str) -> Optional[Tuple["Route", Dict[str, str]]]:
        if self.compiled_router:
            return self._compiled().match(method, path)
        return self.match_reference(method, path)

    # -- dispatch -----------------------------------------------------------------

    def __call__(self, request: Request) -> Response:
        try:
            response = self._dispatch(request)
        except HaltRequest as h:
            response = Response(body=h.body, status=h.status, headers=h.headers)
        except Exception as error:  # noqa: BLE001 - converted to HTTP errors below
            response = self._handle_error(request, error)
        return self._apply_after(request, response)

    def _dispatch(self, request: Request) -> Response:
        found = self.match(request.method, request.path)
        if found is None and request.method == "HEAD":
            # HEAD falls back to the GET route (RFC 9110 §9.3.2); the
            # HTTP servers drop the body and keep the headers.
            found = self.match("GET", request.path)
        if found is None:
            return Response(body="not found", status=404, content_type="text/plain")
        route, captures = found
        request.env[ROUTE_ENV_KEY] = route.pattern
        request.add_route_params(captures)
        for filter_func in self._before:
            filter_func(request)
        result = route.handler(request)
        return Response.coerce(result)

    def _apply_after(self, request: Request, response: Response) -> Response:
        try:
            for filter_func in self._after:
                replacement = filter_func(request, response)
                if replacement is not None:
                    response = replacement
            return response
        except HaltRequest as h:
            return Response(body=h.body, status=h.status, headers=h.headers)
        except Exception as error:  # noqa: BLE001
            return self._handle_error(request, error)

    def _handle_error(self, request: Request, error: Exception) -> Response:
        for exception_type, handler in self._error_handlers.items():
            if isinstance(error, exception_type):
                return Response.coerce(handler(request, error))
        if isinstance(error, AuthenticationError):
            return Response(
                body="authentication required",
                status=401,
                headers={"WWW-Authenticate": 'Basic realm="SafeWeb"'},
                content_type="text/plain",
            )
        if isinstance(error, DisclosureError):
            # The paper's behaviour: the operation is aborted and an error
            # message displayed; no trace of the confidential data leaves.
            return Response(
                body="access denied: response would disclose confidential data",
                status=403,
                content_type="text/plain",
            )
        if isinstance(error, SanitisationError):
            return Response(
                body="rejected: unsanitised user input in response",
                status=400,
                content_type="text/plain",
            )
        return Response(
            body="internal server error",
            status=500,
            content_type="text/plain",
        )
