"""HTTP plumbing: a worker-pool keep-alive server, the seed threaded
server (kept as the benchmark reference) and an in-process test client.

:class:`HttpServer` is the production path: a fixed pool of worker
threads each running an accept → serve loop over persistent HTTP/1.1
connections. One connection occupies one worker for its lifetime, so the
pool size bounds concurrency (the kernel backlog absorbs bursts) and no
thread is ever spawned per connection. Requests are read from a buffered
socket file, which makes pipelined requests work for free; responses
carry correct ``Content-Length``/``Connection`` headers, ``HEAD`` is
served headers-only off the ``GET`` route, request bodies stay bytes
until a handler asks for text, and payloads above ``stream_threshold``
are streamed with chunked transfer-encoding so one huge labeled page
cannot hold a multi-megabyte buffer per connection. TLS wraps each
accepted socket (handshake on the worker, not the acceptor).

:class:`ThreadedHttpServer` is the seed architecture — stock
``ThreadingHTTPServer``, one thread per connection — preserved as the
reference the web benchmark (``scripts/bench_web.py``) compares against,
with the handler bugs fixed (HEAD support, ``Connection: close``,
binary-safe bodies).

:class:`TestClient` drives an app without sockets. Tests and the page-
generation benchmark use it so measurements capture *page generation*
(what the paper reports) rather than socket noise.
"""

from __future__ import annotations

import socket
import ssl
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Set, Tuple

from repro.web.auth import encode_basic
from repro.web.request import Request
from repro.web.response import Response

_MAX_LINE = 65536
_MAX_HEADERS = 128
_SUPPORTED_VERSIONS = ("HTTP/1.1", "HTTP/1.0")


class _BadRequest(Exception):
    """Malformed input on the wire; the connection is answered and closed."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


_ERROR_REASONS = {400: "Bad Request", 413: "Payload Too Large"}


class HttpServer:
    """Serve a SafeWeb app from a bounded pool of keep-alive workers."""

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 0,
        tls_context: Optional[ssl.SSLContext] = None,
        workers: int = 16,
        keep_alive_timeout: float = 5.0,
        max_requests_per_connection: int = 1000,
        max_body_size: int = 10 * 1024 * 1024,
        stream_threshold: int = 256 * 1024,
        chunk_size: int = 64 * 1024,
        backlog: int = 128,
    ):
        self.app = app
        self.workers = workers
        self.keep_alive_timeout = keep_alive_timeout
        self.max_requests_per_connection = max_requests_per_connection
        self.max_body_size = max_body_size
        self.stream_threshold = stream_threshold
        self.chunk_size = chunk_size
        self._tls_context = tls_context
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        # Workers poll accept() so stop() can wake threads blocked on a
        # quiet listener (closing an fd does not interrupt accept()).
        self._listener.settimeout(0.5)
        self.server_address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._shutdown = threading.Event()
        self._threads: list = []
        self._connections: Set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        #: Requests served across all connections (tests/bench read this).
        self.requests_served = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address

    @property
    def url(self) -> str:
        host, port = self.server_address
        return f"http://{host}:{port}"

    def start(self) -> "HttpServer":
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"safeweb-http-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._connections_lock:
            open_connections = list(self._connections)
        for connection in open_connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover - racing with the worker
                pass
        for thread in self._threads:
            thread.join(5)
        self._threads = []

    # -- the worker loop ---------------------------------------------------

    def _worker(self) -> None:
        while not self._shutdown.is_set():
            try:
                connection, address = self._listener.accept()
            except socket.timeout:
                continue  # poll the shutdown flag
            except OSError:  # listener closed: shutting down
                return
            with self._connections_lock:
                self._connections.add(connection)
            try:
                self._serve_connection(connection, address)
            except Exception:  # noqa: BLE001 - one bad connection must not kill a worker
                pass
            finally:
                with self._connections_lock:
                    self._connections.discard(connection)
                try:
                    connection.close()
                except OSError:
                    pass

    def _serve_connection(self, connection: socket.socket, address) -> None:
        # Timeout first so a stalled TLS handshake cannot pin the worker.
        connection.settimeout(self.keep_alive_timeout)
        if self._tls_context is not None:
            connection = self._tls_context.wrap_socket(connection, server_side=True)
        reader = connection.makefile("rb")
        served = 0
        try:
            while not self._shutdown.is_set():
                try:
                    parsed = self._read_request(reader)
                except _BadRequest as bad:
                    self._write_simple(connection, bad.status, str(bad))
                    return
                except (socket.timeout, OSError, ValueError):
                    return  # idle keep-alive expiry, peer reset, or EOF mid-request
                if parsed is None:
                    return  # clean EOF between requests
                method, target, version, headers, body = parsed
                served += 1
                keep_alive = self._keep_alive(version, headers)
                if served >= self.max_requests_per_connection:
                    keep_alive = False
                request = Request(
                    method=method,
                    path=target,
                    headers=headers,
                    body=body,
                    remote_addr=address[0] if address else "127.0.0.1",
                )
                response = self.app(request)
                status, response_headers, payload = response.finalize()
                self.requests_served += 1
                try:
                    self._write_response(
                        connection,
                        status,
                        response.reason,
                        response_headers,
                        payload,
                        keep_alive=keep_alive,
                        head_only=method.upper() == "HEAD",
                        chunk_allowed=version == "HTTP/1.1",
                    )
                except OSError:
                    return
                if not keep_alive:
                    return
        finally:
            try:
                reader.close()
            except OSError:
                pass

    # -- request parsing ---------------------------------------------------

    def _read_request(self, reader):
        """One request from the buffered reader, or None on clean EOF."""
        line = reader.readline(_MAX_LINE + 1)
        if not line:
            return None
        if len(line) > _MAX_LINE:
            raise _BadRequest("request line too long")
        if line in (b"\r\n", b"\n"):
            # Tolerate a stray CRLF between pipelined requests (RFC 9112 §2.2).
            line = reader.readline(_MAX_LINE + 1)
            if not line:
                return None
        try:
            text = line.decode("latin-1").rstrip("\r\n")
            method, target, version = text.split(" ", 2)
        except ValueError as error:
            raise _BadRequest("malformed request line") from error
        if version not in _SUPPORTED_VERSIONS:
            raise _BadRequest(f"unsupported version {version!r}")
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS + 1):
            line = reader.readline(_MAX_LINE + 1)
            if not line or len(line) > _MAX_LINE:
                raise _BadRequest("truncated or oversized header block")
            if line in (b"\r\n", b"\n"):
                break
            name, separator, value = line.decode("latin-1").partition(":")
            if not separator:
                raise _BadRequest("malformed header line")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many headers")
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _BadRequest("chunked request bodies not supported")
        length_text = headers.get("content-length", "") or "0"
        try:
            length = int(length_text)
        except ValueError as error:
            raise _BadRequest("bad Content-Length") from error
        if length < 0:
            raise _BadRequest("negative Content-Length")
        if length > self.max_body_size:
            # Refuse before buffering: an unauthenticated client must not
            # be able to hold max_body_size bytes per worker.
            raise _BadRequest("request body too large", status=413)
        body = reader.read(length) if length else b""
        if length and len(body) != length:
            raise ValueError("peer closed mid-body")
        return method, target, version, headers, body

    @staticmethod
    def _keep_alive(version: str, headers: Dict[str, str]) -> bool:
        connection = headers.get("connection", "").lower()
        if "close" in connection:
            return False
        if version == "HTTP/1.0":
            return "keep-alive" in connection
        return True

    # -- response writing --------------------------------------------------

    def _write_response(
        self,
        connection: socket.socket,
        status: int,
        reason: str,
        headers: Dict[str, str],
        payload: bytes,
        keep_alive: bool,
        head_only: bool,
        chunk_allowed: bool,
    ) -> None:
        chunked = (
            chunk_allowed
            and not head_only
            and len(payload) > self.stream_threshold
        )
        lines = [f"HTTP/1.1 {status} {reason}"]
        for name, value in headers.items():
            if chunked and name.lower() == "content-length":
                continue
            lines.append(f"{name}: {value}")
        if chunked:
            lines.append("Transfer-Encoding: chunked")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        if head_only:
            connection.sendall(head)
            return
        if not chunked:
            connection.sendall(head + payload)
            return
        connection.sendall(head)
        for start in range(0, len(payload), self.chunk_size):
            chunk = payload[start : start + self.chunk_size]
            connection.sendall(f"{len(chunk):x}\r\n".encode("ascii") + chunk + b"\r\n")
        connection.sendall(b"0\r\n\r\n")

    @staticmethod
    def _write_simple(connection: socket.socket, status: int, text: str) -> None:
        payload = text.encode("utf-8")
        reason = _ERROR_REASONS.get(status, "Bad Request")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: text/plain\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            connection.sendall(head + payload)
        except OSError:
            pass


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "ThreadedHttpServer"

    def _run(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        # Bytes, undecoded: a binary POST must not crash the handler
        # thread (the Request decodes lazily, and only if asked).
        body = self.rfile.read(length) if length else b""
        request = Request(
            method=self.command,
            path=self.path,
            headers=dict(self.headers.items()),
            body=body,
            remote_addr=self.client_address[0],
        )
        response = self.server.app(request)
        status, headers, payload = response.finalize()
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        if (self.headers.get("Connection") or "").lower() == "close":
            # parse_request already set close_connection; advertise it.
            self.close_connection = True
            self.send_header("Connection", "close")
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._run()

    def do_HEAD(self) -> None:  # noqa: N802
        self._run()

    def do_POST(self) -> None:  # noqa: N802
        self._run()

    def do_PUT(self) -> None:  # noqa: N802
        self._run()

    def do_DELETE(self) -> None:  # noqa: N802
        self._run()

    def log_message(self, *args) -> None:  # silence default stderr logging
        pass


class ThreadedHttpServer(ThreadingHTTPServer):
    """The seed server: one thread per connection (benchmark reference)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 0,
        tls_context: Optional[ssl.SSLContext] = None,
    ):
        self.app = app
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _Handler)
        if tls_context is not None:
            self.socket = tls_context.wrap_socket(self.socket, server_side=True)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address

    @property
    def url(self) -> str:
        host, port = self.server_address
        return f"http://{host}:{port}"

    def start(self) -> "ThreadedHttpServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="safeweb-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None


@dataclass
class ClientResult:
    """What :class:`TestClient` returns: wire view + pre-wire response."""

    status: int
    headers: Dict[str, str]
    text: str
    response: Response = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self):
        import json

        return json.loads(self.text)


class TestClient:
    """Call an app in-process, Rack::Test style."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, app):
        self.app = app
        #: The most recent Request object (benchmarks read its timings).
        self.last_request: Optional[Request] = None

    def request(
        self,
        method: str,
        path: str,
        headers: Optional[Dict[str, str]] = None,
        body: str = "",
        auth: Optional[Tuple[str, str]] = None,
    ) -> ClientResult:
        headers = dict(headers or {})
        if auth is not None:
            headers["Authorization"] = encode_basic(*auth)
        request = Request(method=method, path=path, headers=headers, body=body)
        self.last_request = request
        response = self.app(request)
        status, finalized_headers, payload = response.finalize()
        return ClientResult(
            status=status,
            headers=finalized_headers,
            text=payload.decode("utf-8"),
            response=response,
        )

    def get(self, path: str, **kwargs) -> ClientResult:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, **kwargs) -> ClientResult:
        return self.request("POST", path, **kwargs)

    def put(self, path: str, **kwargs) -> ClientResult:
        return self.request("PUT", path, **kwargs)

    def delete(self, path: str, **kwargs) -> ClientResult:
        return self.request("DELETE", path, **kwargs)
