"""HTTP plumbing: a threaded server and an in-process test client.

The server adapts :class:`http.server.ThreadingHTTPServer` to the
framework's ``Request -> Response`` callable; TLS is a matter of wrapping
the listening socket with an ``ssl.SSLContext`` (the paper's frontend
runs HTTP Basic over TLS).

:class:`TestClient` drives an app without sockets. Tests and the page-
generation benchmark use it so measurements capture *page generation*
(what the paper reports) rather than socket noise.
"""

from __future__ import annotations

import ssl
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.web.auth import encode_basic
from repro.web.request import Request
from repro.web.response import Response


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "HttpServer"

    def _run(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length).decode("utf-8") if length else ""
        request = Request(
            method=self.command,
            path=self.path,
            headers=dict(self.headers.items()),
            body=body,
            remote_addr=self.client_address[0],
        )
        response = self.server.app(request)
        status, headers, payload = response.finalize()
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._run()

    def do_POST(self) -> None:  # noqa: N802
        self._run()

    def do_PUT(self) -> None:  # noqa: N802
        self._run()

    def do_DELETE(self) -> None:  # noqa: N802
        self._run()

    def log_message(self, *args) -> None:  # silence default stderr logging
        pass


class HttpServer(ThreadingHTTPServer):
    """Serve a SafeWeb app over real sockets."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 0,
        tls_context: Optional[ssl.SSLContext] = None,
    ):
        self.app = app
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _Handler)
        if tls_context is not None:
            self.socket = tls_context.wrap_socket(self.socket, server_side=True)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address

    @property
    def url(self) -> str:
        host, port = self.server_address
        return f"http://{host}:{port}"

    def start(self) -> "HttpServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="safeweb-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None


@dataclass
class ClientResult:
    """What :class:`TestClient` returns: wire view + pre-wire response."""

    status: int
    headers: Dict[str, str]
    text: str
    response: Response = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self):
        import json

        return json.loads(self.text)


class TestClient:
    """Call an app in-process, Rack::Test style."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, app):
        self.app = app
        #: The most recent Request object (benchmarks read its timings).
        self.last_request: Optional[Request] = None

    def request(
        self,
        method: str,
        path: str,
        headers: Optional[Dict[str, str]] = None,
        body: str = "",
        auth: Optional[Tuple[str, str]] = None,
    ) -> ClientResult:
        headers = dict(headers or {})
        if auth is not None:
            headers["Authorization"] = encode_basic(*auth)
        request = Request(method=method, path=path, headers=headers, body=body)
        self.last_request = request
        response = self.app(request)
        status, finalized_headers, payload = response.finalize()
        return ClientResult(
            status=status,
            headers=finalized_headers,
            text=payload.decode("utf-8"),
            response=response,
        )

    def get(self, path: str, **kwargs) -> ClientResult:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, **kwargs) -> ClientResult:
        return self.request("POST", path, **kwargs)

    def put(self, path: str, **kwargs) -> ClientResult:
        return self.request("PUT", path, **kwargs)

    def delete(self, path: str, **kwargs) -> ClientResult:
        return self.request("DELETE", path, **kwargs)
