"""HTTP Basic authentication against the web database (paper §5.1).

"Currently, the web frontend uses HTTP basic authentication and TLS" —
credentials arrive base64-encoded in the ``Authorization`` header, are
verified against the web database, and resolve to a
:class:`~repro.core.principals.UserPrincipal` carrying the user's label
privileges (fetched in the same step — Figure 3, step 1).
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import hmac
import threading
from typing import Dict, Optional, Tuple

from repro.core.principals import UserPrincipal
from repro.exceptions import AuthenticationError
from repro.storage.webdb import WebDatabase


def parse_basic_header(header: Optional[str]) -> Tuple[str, str]:
    """Extract (username, password) from an ``Authorization`` header."""
    if not header:
        raise AuthenticationError("missing Authorization header")
    scheme, _space, payload = header.partition(" ")
    if scheme.lower() != "basic" or not payload:
        raise AuthenticationError(f"unsupported authentication scheme {scheme!r}")
    try:
        decoded = base64.b64decode(payload.strip(), validate=True).decode("utf-8")
    except (binascii.Error, UnicodeDecodeError) as error:
        raise AuthenticationError("malformed Basic credentials") from error
    username, colon, password = decoded.partition(":")
    if not colon:
        raise AuthenticationError("malformed Basic credentials (no colon)")
    return username, password


def encode_basic(username: str, password: str) -> str:
    """Build an ``Authorization`` header value (client side / tests)."""
    token = base64.b64encode(f"{username}:{password}".encode()).decode("ascii")
    return f"Basic {token}"


class BasicAuthenticator:
    """Resolves requests to principals via the web database."""

    def __init__(self, webdb: WebDatabase):
        self._webdb = webdb

    def authenticate(self, authorization_header: Optional[str]) -> UserPrincipal:
        """Verify credentials and return the principal with privileges.

        The username lookup is exact (case-sensitive); §5.2's "errors in
        access checks" experiment subclasses this with a case-insensitive
        lookup to inject the CVE-style bug.
        """
        row = self.verify(authorization_header)
        return self.fetch_privileges(row)

    def verify(self, authorization_header: Optional[str]) -> dict:
        """Step 1 of Figure 3: credential verification only.

        Split from privilege fetching so the Figure 5 breakdown can time
        the two components separately (87 ms vs 3 ms in the paper).
        """
        username, password = parse_basic_header(authorization_header)
        return self.verify_credentials(username, password)

    def verify_credentials(self, username: str, password: str) -> dict:
        """Resolve and check one parsed credential pair against ``webdb``."""
        user_id = self.lookup_user_id(username)
        if user_id is None:
            raise AuthenticationError(f"unknown user {username!r}")
        row = self._webdb.user_row(user_id)
        if not self._webdb.check_password(row["name"], password):
            raise AuthenticationError("bad credentials")
        return row

    def fetch_privileges(self, row: dict) -> UserPrincipal:
        """Step 1 of Figure 3, second half: attach the user's privileges."""
        principal = self._webdb.principal_for(row["name"])
        if principal is None:  # pragma: no cover - row existed a moment ago
            raise AuthenticationError(f"unknown user {row['name']!r}")
        return principal

    def lookup_user_id(self, username: str) -> Optional[int]:
        return self._webdb.user_id(username)


class CachingAuthenticator(BasicAuthenticator):
    """The cached enforcement fast path for the before-hook (Figure 3 step 1).

    The seed authenticator hits ``webdb`` twice per request: a PBKDF2
    password verification (the paper's dominant 87 ms Figure 5
    component) and a privilege fetch. Both results are pure functions of
    ``(username, WebDatabase.generation)`` — the web database bumps its
    generation on every user/privilege mutation — so this subclass
    memoizes them with generation-based invalidation (the PR 1 pattern):

    * **credential cache** — after one successful PBKDF2 verification,
      later requests re-validate with a single SHA-256 over the stored
      salt and the presented password (compared in constant time), not
      the full iterated KDF. Plaintext passwords are never stored;
    * **principal cache** — the :class:`UserPrincipal` with its
      :class:`~repro.core.privileges.PrivilegeSet` is reused until the
      generation moves, so the after-hook's label check keeps hitting
      the *same* privilege set instance and rides its memoized
      clearance decisions.

    A grant or revoke bumps the generation, every cached entry misses,
    and the next request resolves fresh state — a revoked privilege can
    never authenticate or clear a label check from cache.
    """

    #: Bound on each cache; overflow clears wholesale (entries are cheap
    #: to rebuild and the working set is "active users", far below this).
    MAX_ENTRIES = 4096

    def __init__(self, webdb: WebDatabase):
        super().__init__(webdb)
        self._cache_lock = threading.Lock()
        #: username → (generation, sha256(salt || password), row)
        self._credentials: Dict[str, Tuple[int, bytes, dict]] = {}
        #: username → (generation, principal)
        self._principals: Dict[str, Tuple[int, UserPrincipal]] = {}
        self.credential_hits = 0
        self.credential_misses = 0
        self.principal_hits = 0
        self.principal_misses = 0

    @staticmethod
    def _token(salt: str, password: str) -> bytes:
        return hashlib.sha256(salt.encode() + password.encode()).digest()

    def verify(self, authorization_header: Optional[str]) -> dict:
        username, password = parse_basic_header(authorization_header)
        generation = self._webdb.generation
        with self._cache_lock:
            entry = self._credentials.get(username)
        if entry is not None and entry[0] == generation:
            cached_generation, token, row = entry
            if hmac.compare_digest(token, self._token(row["salt"], password)):
                self.credential_hits += 1
                return row
            # Same user, different password: fall through to the KDF so
            # a wrong guess costs exactly what it costs the seed path.
        self.credential_misses += 1
        row = super().verify_credentials(username, password)
        with self._cache_lock:
            if len(self._credentials) >= self.MAX_ENTRIES:
                self._credentials.clear()
            self._credentials[username] = (
                generation,
                self._token(row["salt"], password),
                row,
            )
        return row

    def fetch_privileges(self, row: dict) -> UserPrincipal:
        username = row["name"]
        generation = self._webdb.generation
        with self._cache_lock:
            entry = self._principals.get(username)
        if entry is not None and entry[0] == generation:
            self.principal_hits += 1
            return entry[1]
        self.principal_misses += 1
        principal = super().fetch_privileges(row)
        with self._cache_lock:
            if len(self._principals) >= self.MAX_ENTRIES:
                self._principals.clear()
            self._principals[username] = (generation, principal)
        return principal


class CaseInsensitiveAuthenticator(BasicAuthenticator):
    """The §5.2 'errors in access checks' injection: ``LOWER()`` lookup.

    With users ``mdt1`` and ``MDT1`` holding different privileges, this
    authenticator can resolve a login to the *other* user's account —
    the privilege-confusion bug SafeWeb must contain. Password checking
    still runs against the resolved row, so the test registers both
    accounts with the same password, as an operator plausibly might.
    """

    def lookup_user_id(self, username: str) -> Optional[int]:
        return self._webdb.user_id_case_insensitive(username)
