"""HTTP Basic authentication against the web database (paper §5.1).

"Currently, the web frontend uses HTTP basic authentication and TLS" —
credentials arrive base64-encoded in the ``Authorization`` header, are
verified against the web database, and resolve to a
:class:`~repro.core.principals.UserPrincipal` carrying the user's label
privileges (fetched in the same step — Figure 3, step 1).
"""

from __future__ import annotations

import base64
import binascii
from typing import Optional, Tuple

from repro.core.principals import UserPrincipal
from repro.exceptions import AuthenticationError
from repro.storage.webdb import WebDatabase


def parse_basic_header(header: Optional[str]) -> Tuple[str, str]:
    """Extract (username, password) from an ``Authorization`` header."""
    if not header:
        raise AuthenticationError("missing Authorization header")
    scheme, _space, payload = header.partition(" ")
    if scheme.lower() != "basic" or not payload:
        raise AuthenticationError(f"unsupported authentication scheme {scheme!r}")
    try:
        decoded = base64.b64decode(payload.strip(), validate=True).decode("utf-8")
    except (binascii.Error, UnicodeDecodeError) as error:
        raise AuthenticationError("malformed Basic credentials") from error
    username, colon, password = decoded.partition(":")
    if not colon:
        raise AuthenticationError("malformed Basic credentials (no colon)")
    return username, password


def encode_basic(username: str, password: str) -> str:
    """Build an ``Authorization`` header value (client side / tests)."""
    token = base64.b64encode(f"{username}:{password}".encode()).decode("ascii")
    return f"Basic {token}"


class BasicAuthenticator:
    """Resolves requests to principals via the web database."""

    def __init__(self, webdb: WebDatabase):
        self._webdb = webdb

    def authenticate(self, authorization_header: Optional[str]) -> UserPrincipal:
        """Verify credentials and return the principal with privileges.

        The username lookup is exact (case-sensitive); §5.2's "errors in
        access checks" experiment subclasses this with a case-insensitive
        lookup to inject the CVE-style bug.
        """
        row = self.verify(authorization_header)
        return self.fetch_privileges(row)

    def verify(self, authorization_header: Optional[str]) -> dict:
        """Step 1 of Figure 3: credential verification only.

        Split from privilege fetching so the Figure 5 breakdown can time
        the two components separately (87 ms vs 3 ms in the paper).
        """
        username, password = parse_basic_header(authorization_header)
        user_id = self.lookup_user_id(username)
        if user_id is None:
            raise AuthenticationError(f"unknown user {username!r}")
        row = self._webdb.user_row(user_id)
        if not self._webdb.check_password(row["name"], password):
            raise AuthenticationError("bad credentials")
        return row

    def fetch_privileges(self, row: dict) -> UserPrincipal:
        """Step 1 of Figure 3, second half: attach the user's privileges."""
        principal = self._webdb.principal_for(row["name"])
        if principal is None:  # pragma: no cover - row existed a moment ago
            raise AuthenticationError(f"unknown user {row['name']!r}")
        return principal

    def lookup_user_id(self, username: str) -> Optional[int]:
        return self._webdb.user_id(username)


class CaseInsensitiveAuthenticator(BasicAuthenticator):
    """The §5.2 'errors in access checks' injection: ``LOWER()`` lookup.

    With users ``mdt1`` and ``MDT1`` holding different privileges, this
    authenticator can resolve a login to the *other* user's account —
    the privilege-confusion bug SafeWeb must contain. Password checking
    still runs against the resolved row, so the test registers both
    accounts with the same password, as an operator plausibly might.
    """

    def lookup_user_id(self, username: str) -> Optional[int]:
        return self._webdb.user_id_case_insensitive(username)
