"""The web frontend (paper §4.4).

A Sinatra-like micro framework with the interception points SafeWeb
needs: a *before* hook where the middleware authenticates the request and
fetches the user's privileges from the web database, and an *after* hook
where the response's labels are validated against those privileges before
anything reaches the client. Application route code in between runs
unmodified — labels travel through it via the taint-tracking types.
"""

from repro.web.request import Request
from repro.web.response import Response
from repro.web.framework import SafeWebApp, halt
from repro.web.routing import TrieRouter
from repro.web.templates import Template, TemplateRegistry, render
from repro.web.auth import BasicAuthenticator, CachingAuthenticator
from repro.web.middleware import SafeWebMiddleware
from repro.web.pagecache import PageCache
from repro.web.sessions import DocStoreSessionStore, SessionMiddleware
from repro.web.http import HttpServer, TestClient, ThreadedHttpServer

__all__ = [
    "Request",
    "Response",
    "SafeWebApp",
    "halt",
    "TrieRouter",
    "Template",
    "TemplateRegistry",
    "render",
    "BasicAuthenticator",
    "CachingAuthenticator",
    "SafeWebMiddleware",
    "PageCache",
    "DocStoreSessionStore",
    "SessionMiddleware",
    "HttpServer",
    "ThreadedHttpServer",
    "TestClient",
]
