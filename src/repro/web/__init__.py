"""The web frontend (paper §4.4).

A Sinatra-like micro framework with the interception points SafeWeb
needs: a *before* hook where the middleware authenticates the request and
fetches the user's privileges from the web database, and an *after* hook
where the response's labels are validated against those privileges before
anything reaches the client. Application route code in between runs
unmodified — labels travel through it via the taint-tracking types.
"""

from repro.web.request import Request
from repro.web.response import Response
from repro.web.framework import SafeWebApp, halt
from repro.web.templates import Template, render
from repro.web.auth import BasicAuthenticator
from repro.web.middleware import SafeWebMiddleware
from repro.web.sessions import SessionMiddleware
from repro.web.http import HttpServer, TestClient

__all__ = [
    "Request",
    "Response",
    "SafeWebApp",
    "halt",
    "Template",
    "render",
    "BasicAuthenticator",
    "SafeWebMiddleware",
    "SessionMiddleware",
    "HttpServer",
    "TestClient",
]
