"""Clearance-keyed response cache for the web frontend.

The expensive part of an authenticated page is generation: view reads,
template rendering and the label fold. But a generated page is a pure
function of ``(route, params, application-database state)``, and the
*decision* to release it to a principal is a pure function of the page's
label set and the principal's privileges — both already memoized. So the
cache stores finished pages under ``(route pattern, params)`` together
with the label set the enforcement hook computed for them, and serves a
hit to any principal whose privileges **dominate** that label set (the
same ``clearance_covers`` decision the after-hook would have made on the
freshly generated page; "Precise, Dynamic Information Flow for
Database-Backed Applications" motivates caching policy decisions across
the request/storage boundary like this).

Safety invariants, each pinned by tests:

* **No privilege amplification.** A hit is released only after
  ``privileges.clearance_covers(labels)`` for the *current* principal.
  Privileges are re-resolved per request and grant/revoke bumps the web
  database generation, so a principal whose clearance was revoked misses
  the dominance check, the route regenerates the page, and the after-hook
  raises :class:`~repro.exceptions.DisclosureError` exactly as without
  the cache (the stale-cache scenario in ``tests/property/test_router.py``).
* **No stale pages.** The cache subscribes to the application document
  store's changes feed (:meth:`attach_store`); any committed batch clears
  the cache and bumps an epoch. Requests remember the epoch they looked
  up under and the store hook discards results computed against a
  superseded epoch, closing the read-render-store race.
* **No taint laundering.** Responses carrying user taint, non-200
  statuses, non-GET methods and byte bodies are never cached.
* **Per-user pages stay per-user.** Routes whose content depends on the
  principal beyond the label check (the MDT front page) register with
  ``vary_user=True``; their entries additionally match on the username.

Cached hits are audited with the page's label set under the same
``("frontend", "respond")`` event the fresh path emits, so the audit
trail is observation-equivalent too.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.core.audit import AuditLog, default_audit_log
from repro.exceptions import HaltRequest
from repro.core.labels import LabelSet
from repro.taint import strip_labels
from repro.web.framework import ROUTE_ENV_KEY, SafeWebApp
from repro.web.request import Request
from repro.web.response import Response

#: ``request.env`` markers (read by tests and the Figure 5 breakdown).
CACHE_ENV_KEY = "safeweb.page_cache"
_EPOCH_ENV_KEY = "safeweb.page_cache.epoch"
_KEY_ENV_KEY = "safeweb.page_cache.key"


class _Entry:
    __slots__ = ("status", "headers", "body", "labels", "user")

    def __init__(
        self,
        status: int,
        headers: Dict[str, str],
        body: str,
        labels: LabelSet,
        user: Optional[str],
    ):
        self.status = status
        self.headers = headers
        self.body = body
        self.labels = labels
        self.user = user  # None unless the route is vary_user


class PageCache:
    """Route-scoped page cache with clearance-dominance release checks."""

    def __init__(self, max_entries: int = 512, audit: Optional[AuditLog] = None):
        self._lock = threading.Lock()
        self._routes: Dict[str, bool] = {}  # pattern -> vary_user
        self._entries: Dict[
            Tuple[str, Tuple[Tuple[str, str], ...], Optional[str]], _Entry
        ] = {}
        self._max_entries = max_entries
        self._epoch = 0
        self._audit = audit if audit is not None else default_audit_log()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0

    # -- configuration -----------------------------------------------------

    def cacheable(self, pattern: str, vary_user: bool = False) -> None:
        """Opt route *pattern* into caching.

        ``vary_user=True`` keys entries on the authenticated username as
        well — required when the handler reads ``request.user`` for
        anything beyond enforcement (e.g. the front page's "my MDT").
        """
        self._routes[pattern] = vary_user

    def install(self, app: SafeWebApp) -> SafeWebApp:
        """Register the lookup/store hooks.

        Must run *after* :meth:`SafeWebMiddleware.install` so the lookup
        sees the authenticated principal and the store hook runs after
        the label check has passed (a failed check aborts the after
        chain before the store hook).
        """
        app.before(self.lookup)
        app.after(self.store)
        return app

    def attach_store(self, database: Any) -> None:
        """Invalidate on every committed batch of *database*'s changes feed."""
        database.add_change_listener(self._on_changes)

    def _on_changes(self, changes) -> None:
        with self._lock:
            self._epoch += 1
            if self._entries:
                self._entries.clear()
                self.invalidations += 1

    def invalidate_all(self) -> None:
        self._on_changes(())

    # -- the hooks ---------------------------------------------------------

    def _key(
        self, request: Request, vary_user: bool
    ) -> Tuple[str, Tuple[Tuple[str, str], ...], Optional[str]]:
        pattern = request.env[ROUTE_ENV_KEY]
        params = tuple(
            sorted((str(key), str(value)) for key, value in request.params.items())
        )
        user = request.user.name if vary_user and request.user else None
        return (pattern, params, user)

    def lookup(self, request: Request) -> None:
        if request.method != "GET":
            return
        vary_user = self._routes.get(request.env.get(ROUTE_ENV_KEY))
        if vary_user is None:
            return
        key = self._key(request, vary_user)
        with self._lock:
            entry = self._entries.get(key)
            epoch = self._epoch
        request.env[_EPOCH_ENV_KEY] = epoch
        request.env[_KEY_ENV_KEY] = key
        user = request.user
        if entry is None or (vary_user and user is None):
            self.misses += 1
            request.env[CACHE_ENV_KEY] = "miss"
            return
        if entry.labels.confidentiality:
            if user is None or not user.privileges.clearance_covers(entry.labels):
                # Not dominant: regenerate, and let the after-hook make
                # (and audit) the denial exactly as the fresh path would.
                self.misses += 1
                request.env[CACHE_ENV_KEY] = "miss"
                return
            self._audit.allowed("frontend", "respond", user.name, labels=entry.labels)
        self.hits += 1
        request.env[CACHE_ENV_KEY] = "hit"
        raise HaltRequest(entry.status, entry.body, dict(entry.headers))

    def store(self, request: Request, response: Response) -> Optional[Response]:
        if request.method != "GET" or request.env.get(CACHE_ENV_KEY) != "miss":
            return None
        vary_user = self._routes.get(request.env.get(ROUTE_ENV_KEY))
        if vary_user is None or response.status != 200:
            return None
        if isinstance(response.body, (bytes, bytearray)) or response.user_tainted:
            return None
        labels = response.labels
        entry = _Entry(
            status=response.status,
            headers={
                name: value
                for name, value in response.headers.items()
                if name.lower() != "content-length"
            },
            body=str(strip_labels(response.body_text())),
            labels=labels,
            user=request.user.name if vary_user and request.user else None,
        )
        key = request.env.get(_KEY_ENV_KEY)
        with self._lock:
            if request.env.get(_EPOCH_ENV_KEY) != self._epoch:
                return None  # the store changed while this page rendered
            if len(self._entries) >= self._max_entries:
                self._entries.clear()
            self._entries[key] = entry
            self.stores += 1
        return None

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "invalidations": self.invalidations,
            }
