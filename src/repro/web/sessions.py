"""Cookie sessions and CSRF protection.

The paper's frontend uses HTTP Basic over TLS and stores "session and
usage data" in the web database, and it notes that applications still
benefit from classic framework defences (Rack::Csrf) alongside IFC.
This module supplies both pieces:

* :class:`SessionMiddleware` — cookie-backed sessions resolved through
  the web database (the ``sessions`` table), as an alternative
  authentication path to HTTP Basic: a ``POST /login`` issues the
  cookie, subsequent requests carry it, and the SafeWeb privilege fetch
  works exactly as for Basic auth;
* CSRF double-submit protection for state-changing methods, mirroring
  ``Rack::Csrf``: a per-session token must accompany POST/PUT/DELETE.

IFC remains the disclosure defence; these are the orthogonal
framework-level protections the paper assumes remain in place (§6).
"""

from __future__ import annotations

import hmac
import secrets
import time
from typing import Optional

from repro.core.audit import AuditLog, default_audit_log
from repro.exceptions import AuthenticationError, HaltRequest, SafeWebError
from repro.storage.webdb import WebDatabase
from repro.web.framework import SafeWebApp
from repro.web.middleware import SafeWebMiddleware
from repro.web.request import Request
from repro.web.response import Response

SESSION_COOKIE = "safeweb_session"
CSRF_HEADER = "x-csrf-token"
CSRF_FIELD = "csrf_token"

_UNSAFE_METHODS = frozenset({"POST", "PUT", "DELETE"})


def parse_cookies(header: Optional[str]) -> dict:
    cookies = {}
    for part in (header or "").split(";"):
        name, _eq, value = part.strip().partition("=")
        if name and _eq:
            cookies[name] = value
    return cookies


#: Web-database config key the deployment's CSRF signing key persists
#: under (hex-encoded), so replicas sharing the database validate each
#: other's tokens while distinct deployments never do.
CSRF_KEY_CONFIG = "csrf_signing_key"


def csrf_token_for(session_token: str, key: bytes) -> str:
    """Derive the CSRF token from the session (double-submit pattern).

    *key* is the deployment's random signing key — never a constant: a
    key shared across deployments would let a token minted on any
    instance forge state-changing requests on every other.
    """
    digest = hmac.new(key, session_token.encode(), "sha256")
    return digest.hexdigest()


def _resolve_csrf_key(webdb, csrf_key: Optional[bytes]) -> bytes:
    """Constructor-injected key, else the webdb-persisted one, else fresh."""
    if csrf_key is not None:
        return csrf_key
    generated = secrets.token_bytes(32)
    setdefault = getattr(webdb, "config_setdefault", None)
    if setdefault is None:
        return generated
    return bytes.fromhex(setdefault(CSRF_KEY_CONFIG, generated.hex()))


class DocStoreSessionStore:
    """Session state in the (sharded) labeled document store.

    The web database's ``sessions`` table is a single-writer SQLite
    bottleneck under concurrent logins; this store keeps one document
    per session (``session-<token>``) in a
    :class:`~repro.storage.docstore.ShardedDatabase`, so session churn
    scales with the storage tier (PR 3) instead of serialising on the
    web database lock. It quacks like the ``WebDatabase`` session API
    (``create_session`` / ``session_user`` / ``delete_session``), so
    :class:`SessionMiddleware` accepts either.
    """

    def __init__(self, database=None, shards: int = 4, name: str = "safeweb-sessions"):
        if database is None:
            from repro.storage.docstore import make_database

            database = make_database(name, shards=shards)
        self._db = database

    @staticmethod
    def _doc_id(token: str) -> str:
        return f"session-{token}"

    def create_session(self, user_id: int) -> str:
        token = secrets.token_urlsafe(24)
        self._db.put(
            {
                "_id": self._doc_id(token),
                "type": "session",
                "u_id": user_id,
                "created_at": time.time(),
            }
        )
        return token

    def session_user(self, token: str, max_age: float = 3600.0) -> Optional[int]:
        document = self._db.get_or_none(self._doc_id(token))
        if document is None:
            return None
        if time.time() - document["created_at"] > max_age:
            self.delete_session(token)
            return None
        return document["u_id"]

    def delete_session(self, token: str) -> None:
        document = self._db.get_or_none(self._doc_id(token))
        if document is None:
            return
        try:
            self._db.delete(document["_id"], document["_rev"])
        except SafeWebError:
            pass  # concurrent logout already removed it

    def session_count(self) -> int:
        return sum(
            1 for doc_id in self._db.all_doc_ids() if doc_id.startswith("session-")
        )


class SessionMiddleware:
    """Login-form sessions + CSRF, layered under the SafeWeb middleware.

    Install order matters: this runs *before* the SafeWeb middleware's
    auth hook so a valid session cookie satisfies authentication without
    an ``Authorization`` header; the label check at the response boundary
    is untouched.
    """

    def __init__(
        self,
        webdb: WebDatabase,
        safeweb: SafeWebMiddleware,
        audit: Optional[AuditLog] = None,
        session_max_age: float = 3600.0,
        csrf_protect: bool = True,
        session_store=None,
        csrf_key: Optional[bytes] = None,
    ):
        self._webdb = webdb
        self._safeweb = safeweb
        #: Per-deployment CSRF signing key; persisted in the web database
        #: so replicas agree, injected explicitly for exotic stores.
        self.csrf_key = _resolve_csrf_key(webdb, csrf_key)
        #: Where session tokens live: the web database by default, or a
        #: :class:`DocStoreSessionStore` for sharded session state.
        self._sessions = session_store if session_store is not None else webdb
        self._audit = audit if audit is not None else default_audit_log()
        self._max_age = session_max_age
        self._csrf_protect = csrf_protect

    # -- installation ----------------------------------------------------------

    def install(self, app: SafeWebApp) -> SafeWebApp:
        app.before(self.resolve_session)
        app.before(self.check_csrf)
        self.register_routes(app)
        return app

    def register_routes(self, app: SafeWebApp) -> None:
        @app.post("/login")
        def login(request: Request):
            username = str(request.params.get("username", ""))
            password = str(request.params.get("password", ""))
            if not self._webdb.check_password(username, password):
                self._audit.denied("frontend", "login", username or "?")
                raise AuthenticationError("bad credentials")
            user_id = self._webdb.user_id(username)
            token = self._sessions.create_session(user_id)
            self._audit.allowed("frontend", "login", username)
            response = Response(
                csrf_token_for(token, self.csrf_key),
                status=201,
                content_type="text/plain",
            )
            response.headers["Set-Cookie"] = (
                f"{SESSION_COOKIE}={token}; HttpOnly; SameSite=Strict; Path=/"
            )
            return response

        @app.post("/logout")
        def logout(request: Request):
            token = request.env.get("safeweb.session_token")
            if token:
                self._sessions.delete_session(token)
            response = Response("", status=204)
            response.headers["Set-Cookie"] = (
                f"{SESSION_COOKIE}=; Max-Age=0; Path=/"
            )
            return response

    # -- the hooks ----------------------------------------------------------------

    def resolve_session(self, request: Request) -> None:
        if request.user is not None or request.path == "/login":
            return
        token = parse_cookies(request.header("cookie")).get(SESSION_COOKIE)
        if not token:
            return
        user_id = self._sessions.session_user(token, max_age=self._max_age)
        if user_id is None:
            return
        row = self._webdb.user_row(user_id)
        request.user = self._webdb.principal_for(row["name"])
        request.env["safeweb.session_token"] = token
        self._audit.allowed("frontend", "session", row["name"])

    def check_csrf(self, request: Request) -> None:
        if not self._csrf_protect or request.method not in _UNSAFE_METHODS:
            return
        token = request.env.get("safeweb.session_token")
        if token is None:
            return  # not session-authenticated (e.g. Basic): CSRF-immune
        presented = request.header(CSRF_HEADER) or str(
            request.params.get(CSRF_FIELD, "")
        )
        if not presented or not hmac.compare_digest(
            str(presented), csrf_token_for(token, self.csrf_key)
        ):
            principal = request.user.name if request.user else "?"
            self._audit.denied(
                "frontend", "csrf", principal, detail=f"{request.method} {request.path}"
            )
            raise HaltRequest(403, "missing or invalid CSRF token")
