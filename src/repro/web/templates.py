"""An ERB-like template engine with label propagation.

The MDT frontend uses ERB for embedding Ruby in web pages (paper §5.1);
this engine reproduces the syntax and — crucially — keeps the §4.4
guarantee: the rendered page carries the combined labels of every value
interpolated into it, so the middleware's response check sees the page's
true confidentiality.

Syntax::

    <h1>Patients of MDT <%= mdt_id %></h1>
    <% for patient in patients %>
      <li><%= patient["name"] %></li>
    <% end %>
    <%# comments vanish %>
    <%== raw_html %>

* ``<%= expr %>`` interpolates with HTML escaping (which also clears the
  user-input taint — the XSS defence);
* ``<%== expr %>`` interpolates raw, keeping any taint (the middleware
  will then reject the page if tainted user input got this far);
* ``<% statement %>`` is control flow; blocks close with ``<% end %>``
  as in ERB (``if``/``elif``/``else``/``for``/``while``).

Templates are application code and therefore trusted — the same trust the
paper places in ERB templates.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Dict, List, Tuple

from repro.exceptions import SafeWebError
from repro.taint.labeled import combine_sources
from repro.taint.sanitize import html_escape
from repro.taint.string import LabeledStr, ensure_labeled_str

_TAG_RE = re.compile(r"<%(.*?)%>", re.DOTALL)
_BLOCK_KEYWORDS = ("if ", "for ", "while ", "with ")
_CONTINUATION_KEYWORDS = ("elif ", "else", "except", "finally")


class TemplateError(SafeWebError):
    """A template failed to compile or render."""


class Template:
    """A compiled template."""

    def __init__(self, source: str, name: str = "<template>", auto_escape: bool = True):
        self.source = source
        self.name = name
        self.auto_escape = auto_escape
        self._code = compile(self._translate(), f"safeweb-template:{name}", "exec")

    # -- compilation --------------------------------------------------------

    def _translate(self) -> str:
        lines: List[str] = ["def __render__():"]
        indent = 1

        def emit_line(code: str) -> None:
            lines.append("    " * indent + code)

        position = 0
        body_emitted = False
        for match in _TAG_RE.finditer(self.source):
            text = self.source[position : match.start()]
            if text:
                emit_line(f"__emit_text__({text!r})")
                body_emitted = True
            position = match.end()
            tag = match.group(1).strip()
            if not tag or tag.startswith("#"):
                continue
            if tag.startswith("=="):
                emit_line(f"__emit_raw__(({tag[2:].strip()}))")
                body_emitted = True
            elif tag.startswith("="):
                emit_line(f"__emit_expr__(({tag[1:].strip()}))")
                body_emitted = True
            elif tag == "end":
                indent -= 1
                if indent < 1:
                    raise TemplateError(f"{self.name}: unbalanced <% end %>")
            elif tag.startswith(_CONTINUATION_KEYWORDS):
                indent -= 1
                if indent < 1:
                    raise TemplateError(f"{self.name}: {tag!r} outside a block")
                emit_line(tag if tag.endswith(":") else tag + ":")
                indent += 1
            elif tag.startswith(_BLOCK_KEYWORDS):
                emit_line(tag if tag.endswith(":") else tag + ":")
                indent += 1
            else:
                emit_line(tag)
                body_emitted = True
        tail = self.source[position:]
        if tail:
            emit_line(f"__emit_text__({tail!r})")
            body_emitted = True
        if indent != 1:
            raise TemplateError(f"{self.name}: unclosed block (missing <% end %>)")
        if not body_emitted:
            emit_line("pass")
        lines.append("__render__()")
        return "\n".join(lines)

    # -- rendering -----------------------------------------------------------

    def render(self, context: Dict[str, Any] | None = None, **kwargs: Any) -> LabeledStr:
        """Render with *context* variables; returns a labeled string."""
        parts: List[Any] = []

        def emit_text(text: str) -> None:
            parts.append(text)

        def emit_expr(value: Any) -> None:
            if self.auto_escape:
                parts.append(html_escape(value))
            else:
                parts.append(ensure_labeled_str(value))

        def emit_raw(value: Any) -> None:
            # Strings (labeled or plain) go in as-is: the final label fold
            # reads them directly, so the extra wrapper the old code paid
            # per interpolation is pure overhead. Non-strings keep the
            # ensure_labeled_str coercion (which also fixes their taint
            # semantics at the point of stringification).
            parts.append(value if isinstance(value, str) else ensure_labeled_str(value))

        namespace: Dict[str, Any] = dict(context or {})
        namespace.update(kwargs)
        namespace["__emit_text__"] = emit_text
        namespace["__emit_expr__"] = emit_expr
        namespace["__emit_raw__"] = emit_raw
        namespace["escape"] = html_escape
        try:
            exec(self._code, namespace)  # noqa: S102 - templates are trusted app code
        except Exception as error:
            raise TemplateError(f"{self.name}: render failed: {error!r}") from error

        labels, taint = combine_sources(*parts)
        plain = "".join(
            [
                part if type(part) is str
                else part.plain if isinstance(part, LabeledStr)
                else str(part)
                for part in parts
            ]
        )
        return LabeledStr(plain, labels=labels, user_taint=taint)


def render(source: str, context: Dict[str, Any] | None = None, **kwargs: Any) -> LabeledStr:
    """One-shot compile-and-render convenience."""
    return Template(source).render(context, **kwargs)


class TemplateRegistry:
    """Named template sources, compiled once and cached by name.

    The portal registers its page sources at import time and resolves
    them through :meth:`get` per request: the first request compiles,
    every later one reuses the compiled :class:`Template`. Re-registering
    a name with different source drops the stale compilation (used by
    tests and by anything hot-swapping page layouts).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sources: Dict[str, Tuple[str, bool]] = {}
        self._compiled: Dict[str, Template] = {}
        self.compilations = 0

    def register(self, name: str, source: str, auto_escape: bool = True) -> None:
        with self._lock:
            if self._sources.get(name) == (source, auto_escape):
                return
            self._sources[name] = (source, auto_escape)
            self._compiled.pop(name, None)

    def get(self, name: str) -> Template:
        with self._lock:
            template = self._compiled.get(name)
            if template is not None:
                return template
            try:
                source, auto_escape = self._sources[name]
            except KeyError:
                raise TemplateError(f"unknown template {name!r}") from None
            template = Template(source, name=name, auto_escape=auto_escape)
            self._compiled[name] = template
            self.compilations += 1
            return template

    def render(self, name: str, context: Dict[str, Any] | None = None, **kwargs: Any) -> LabeledStr:
        return self.get(name).render(context, **kwargs)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._sources
