"""Compiled segment-trie route matching (the PR 1 playbook, applied to HTTP).

The seed router compiles each pattern to a regex and scans the route list
linearly on every request — O(routes) regex executions per dispatch. This
module replaces the scan with a segment trie compiled once from the route
table:

* **static segments** are exact dictionary lookups;
* **pure ``:param`` segments** are wildcard edges capturing the whole
  path segment (one dict write, no regex);
* **mixed segments** (``v:version`` — static text and captures inside one
  segment) keep a per-segment anchored regex, semantically identical to
  the slice the seed regex would have used (``[^/]+`` cannot cross a
  ``/``, so segment-local matching is equivalent to whole-path matching);
* **trailing ``/*``** becomes a splat terminal that accepts any remaining
  path (captured as ``splat`` with its leading slash, absent when the
  path stops exactly at the splat's mount point — both exactly as the
  seed's ``(?P<splat>/.*)?`` behaves);
* **method dispatch** happens at the leaf: terminals are keyed by HTTP
  method.

The seed matcher survives untouched as the executable reference
(:meth:`repro.web.framework.Route.match`, driven linearly by
:meth:`repro.web.framework.SafeWebApp.match_reference`);
``tests/property/test_router.py`` generates route tables and request
paths and proves the trie observation-equivalent, including the
first-match-wins rule for overlapping patterns: every terminal carries
its registration order and the walk returns the lowest-ordered match,
exactly what the linear scan would have produced.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

_PARAM_RE = re.compile(r":([A-Za-z_][A-Za-z0-9_]*)")

#: Segment kinds produced by :func:`parse_pattern`.
STATIC = "static"
PARAM = "param"
MIXED = "mixed"


def compile_segment_regex(segment: str) -> "re.Pattern[str]":
    """The seed's regex translation, applied to a single path segment.

    Byte-for-byte the same construction as the seed route compiler, so a
    mixed segment matches exactly the characters the full-pattern regex
    would have consumed for it.
    """
    regex = ""
    position = 0
    for match in _PARAM_RE.finditer(segment):
        regex += re.escape(segment[position : match.start()])
        regex += f"(?P<{match.group(1)}>[^/]+)"
        position = match.end()
    regex += re.escape(segment[position:])
    return re.compile(f"^{regex}$")


def parse_pattern(pattern: str) -> Tuple[List[Tuple[str, Any]], bool]:
    """Split *pattern* into ``(kind, payload)`` segments plus a splat flag.

    ``payload`` is the literal text for ``static``, the capture name for
    ``param`` and a compiled per-segment regex for ``mixed``.
    """
    has_splat = pattern.endswith("/*")
    base = pattern[:-2] if has_splat else pattern
    if base == "":
        return [], has_splat
    segments: List[Tuple[str, Any]] = []
    for part in base.split("/")[1:]:
        matches = list(_PARAM_RE.finditer(part))
        if not matches:
            segments.append((STATIC, part))
        elif len(matches) == 1 and matches[0].span() == (0, len(part)):
            segments.append((PARAM, matches[0].group(1)))
        else:
            segments.append((MIXED, compile_segment_regex(part)))
    return segments, has_splat


class _Node:
    """One trie node: children by kind, terminals by method."""

    __slots__ = ("static", "params", "mixed", "terminals", "splats")

    def __init__(self) -> None:
        self.static: Dict[str, "_Node"] = {}
        #: ``[(capture_name, child)]`` — wildcard edges for pure params.
        self.params: List[Tuple[str, "_Node"]] = []
        #: ``[(segment_regex, child)]`` — mixed static/capture segments.
        self.mixed: List[Tuple["re.Pattern[str]", "_Node"]] = []
        #: method → ``(order, route)`` for routes ending exactly here.
        self.terminals: Dict[str, Tuple[int, Any]] = {}
        #: method → ``(order, route)`` for ``/*`` routes mounted here.
        self.splats: Dict[str, Tuple[int, Any]] = {}


class TrieRouter:
    """A compiled route table; ``match`` reproduces the seed linear scan."""

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- construction ------------------------------------------------------

    def add(self, method: str, pattern: str, route: Any, order: int) -> None:
        """Insert *route* (matched under *method*/*pattern*) at *order*.

        *order* is the registration index; overlapping patterns resolve to
        the lowest order, which is the seed's first-match-wins rule.
        """
        segments, has_splat = parse_pattern(pattern)
        node = self._root
        for kind, payload in segments:
            if kind == STATIC:
                child = node.static.get(payload)
                if child is None:
                    child = node.static[payload] = _Node()
            elif kind == PARAM:
                child = None
                for name, existing in node.params:
                    if name == payload:
                        child = existing
                        break
                if child is None:
                    child = _Node()
                    node.params.append((payload, child))
            else:  # MIXED
                child = None
                for regex, existing in node.mixed:
                    if regex.pattern == payload.pattern:
                        child = existing
                        break
                if child is None:
                    child = _Node()
                    node.mixed.append((payload, child))
            node = child
        terminals = node.splats if has_splat else node.terminals
        existing = terminals.get(method)
        if existing is None or order < existing[0]:
            terminals[method] = (order, route)
        self._size += 1

    # -- matching ----------------------------------------------------------

    def match(self, method: str, path: str) -> Optional[Tuple[Any, Dict[str, str]]]:
        """The first-registered route matching ``method path``, or None.

        Returns ``(route, captures)`` with the same captures the seed
        regex would have produced (splat included only when present).
        """
        if path.startswith("/"):
            segments = path.split("/")[1:]
        elif path == "":
            # Only a root splat ("/*") matches the empty path, exactly as
            # the seed's optional splat group does.
            segments = []
        else:
            return None
        best = self._walk(self._root, segments, 0, {}, method, None)
        if best is None:
            return None
        return best[1], best[2]

    def _walk(
        self,
        node: _Node,
        segments: List[str],
        index: int,
        captures: Dict[str, str],
        method: str,
        best: Optional[Tuple[int, Any, Dict[str, str]]],
    ) -> Optional[Tuple[int, Any, Dict[str, str]]]:
        splat = node.splats.get(method)
        if splat is not None and (best is None or splat[0] < best[0]):
            found = dict(captures)
            if index < len(segments):
                found["splat"] = "/" + "/".join(segments[index:])
            best = (splat[0], splat[1], found)
        if index == len(segments):
            terminal = node.terminals.get(method)
            if terminal is not None and (best is None or terminal[0] < best[0]):
                best = (terminal[0], terminal[1], dict(captures))
            return best
        segment = segments[index]
        child = node.static.get(segment)
        if child is not None:
            best = self._walk(child, segments, index + 1, captures, method, best)
        if segment:  # a param capture needs at least one character ([^/]+)
            for name, child in node.params:
                captures[name] = segment
                best = self._walk(child, segments, index + 1, captures, method, best)
                del captures[name]
        for regex, child in node.mixed:
            found = regex.match(segment)
            if found is not None:
                merged = dict(captures)
                for key, value in found.groupdict().items():
                    if value is not None:
                        merged[key] = value
                best = self._walk(child, segments, index + 1, merged, method, best)
        return best
