"""Exception hierarchy for the SafeWeb reproduction.

Every error raised by the middleware derives from :class:`SafeWebError` so
applications can install a single handler at a component boundary. The
security-relevant subclasses mirror the enforcement points of the paper:
label checks at the event broker, publish-time declassification checks in
the event-processing engine, isolation violations inside the IFC jail, and
response-time label validation in the web frontend.
"""

from __future__ import annotations


class SafeWebError(Exception):
    """Base class for all errors raised by the middleware."""


class LabelError(SafeWebError):
    """A malformed label or an invalid label operation."""


class PolicyError(SafeWebError):
    """A malformed policy document or an inconsistent privilege grant."""


class SecurityViolation(SafeWebError):
    """Base class for denied information flows.

    Raising (rather than silently dropping) is the frontend behaviour: the
    paper aborts response generation and displays an error message. The
    broker, by contrast, silently filters events a subscriber is not
    cleared for; it never raises this class during matching.
    """


class ClearanceError(SecurityViolation):
    """A principal attempted to read data above its clearance."""


class DeclassificationError(SecurityViolation):
    """A principal attempted to remove a label without the privilege."""


class EndorsementError(SecurityViolation):
    """A principal attempted to add an integrity label without the privilege."""


class DisclosureError(SecurityViolation):
    """The web frontend blocked a response whose labels exceed the user's
    privileges — the paper's "safety net" firing (§4.4, step 4)."""

    def __init__(self, message: str, missing_labels=frozenset()):
        super().__init__(message)
        #: Labels present on the response that the user lacks privileges for.
        self.missing_labels = frozenset(missing_labels)


class IsolationError(SecurityViolation):
    """A jailed unit callback attempted a forbidden operation (I/O, global
    state mutation) — the analogue of a Ruby ``$SAFE=4`` SecurityError."""


class IntegrityError(SecurityViolation):
    """Low-integrity data attempted to enter a component that requires an
    integrity label the data does not carry."""


class ReadOnlyError(SafeWebError):
    """A write was attempted on a read-only database replica (requirement S1)."""


class ReplicationError(SafeWebError):
    """Push replication failed or was attempted against the firewall direction."""


class WalError(SafeWebError):
    """The durability layer refused an operation.

    Raised when a write-ahead log is opened against a mismatched store
    shape, or after the log entered the failed state (an append or fsync
    raised): once the on-disk tail can no longer be trusted to contain
    every acknowledged write, further writes are refused rather than
    risking an acknowledged-write gap in the recovered prefix (the
    PostgreSQL fsync-panic posture; see ``docs/DURABILITY.md``)."""


class CircuitOpenError(SafeWebError):
    """An operation was rejected fast because its circuit breaker is open.

    Raised instead of attempting a call against a backend that has been
    failing: the caller sheds load immediately (and, under supervision,
    dead-letters the event) rather than stalling a lane on a sick
    dependency. See ``docs/ROBUSTNESS.md``."""

    def __init__(self, message: str, breaker: str = ""):
        super().__init__(message)
        self.breaker = breaker


class FirewallError(SafeWebError):
    """A connection was attempted against the permitted zone direction."""


class DocumentConflict(SafeWebError):
    """An MVCC revision conflict in the document store."""

    def __init__(self, message: str, doc_id: str = "", current_rev: str = ""):
        super().__init__(message)
        self.doc_id = doc_id
        self.current_rev = current_rev


class DocumentNotFound(SafeWebError):
    """A document id (or view key) did not resolve in the document store."""


class SelectorSyntaxError(SafeWebError):
    """A malformed SQL-92 subscription selector."""


class StompProtocolError(SafeWebError):
    """A malformed STOMP frame or an illegal protocol state transition."""


class AuthenticationError(SafeWebError):
    """HTTP request authentication failed."""


class HaltRequest(SafeWebError):
    """Internal control-flow signal used by the web framework's ``halt``.

    Mirrors Sinatra's ``halt``: immediately stops route processing and
    returns the attached response.
    """

    def __init__(self, status: int = 500, body: str = "", headers=None):
        super().__init__(f"halt {status}")
        self.status = status
        self.body = body
        self.headers = dict(headers or {})
