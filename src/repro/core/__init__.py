"""Core IFC model: labels, privileges, principals, policy and audit.

This package implements the paper's §4.1 label model and the privilege
machinery that the event-processing backend (§4.3) and the web frontend
(§4.4) both enforce against.
"""

from repro.core.labels import (
    CONFIDENTIALITY,
    INTEGRITY,
    Label,
    LabelSet,
    conf_label,
    int_label,
    parse_label,
)
from repro.core.privileges import (
    CLEARANCE,
    CLEARANCE_LOW_INTEGRITY,
    DECLASSIFICATION,
    ENDORSEMENT,
    Privilege,
    PrivilegeSet,
)
from repro.core.principals import Principal, UnitPrincipal, UserPrincipal
from repro.core.policy import Policy, PolicyDocument, parse_policy
from repro.core.audit import AuditLog, AuditRecord

__all__ = [
    "CONFIDENTIALITY",
    "INTEGRITY",
    "Label",
    "LabelSet",
    "conf_label",
    "int_label",
    "parse_label",
    "CLEARANCE",
    "CLEARANCE_LOW_INTEGRITY",
    "DECLASSIFICATION",
    "ENDORSEMENT",
    "Privilege",
    "PrivilegeSet",
    "Principal",
    "UnitPrincipal",
    "UserPrincipal",
    "Policy",
    "PolicyDocument",
    "parse_policy",
    "AuditLog",
    "AuditRecord",
]
