"""Audit log of label checks and security decisions.

SafeWeb's value proposition (§2) is reducing *audit effort*: once the
middleware is trusted, organisations audit its decisions instead of every
application's code path. This module records every enforcement decision —
grants and denials alike — with the principal, operation, labels involved
and the component that made the check, so deployments can demonstrate
compliance after the fact.

The log is process-wide but injectable: components accept an ``audit``
argument and default to :func:`default_audit_log`.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.labels import LabelSet

#: Decision outcomes.
ALLOWED = "allowed"
DENIED = "denied"

_record_ids = itertools.count(1)


@dataclass(frozen=True)
class AuditRecord:
    """One enforcement decision."""

    record_id: int
    timestamp: float
    component: str  # e.g. "broker", "engine", "frontend", "store"
    operation: str  # e.g. "deliver", "publish", "declassify", "respond"
    principal: str
    decision: str  # ALLOWED | DENIED
    labels: LabelSet = field(default_factory=LabelSet)
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.record_id,
            "timestamp": self.timestamp,
            "component": self.component,
            "operation": self.operation,
            "principal": self.principal,
            "decision": self.decision,
            "labels": self.labels.to_uris(),
            "detail": self.detail,
        }


#: Deferred decisions: (component, operation, principal, decision,
#: labels-or-None, detail, timestamp). Formatting into AuditRecord
#: happens at flush time, off the enforcement hot path.
_PendingEntry = Tuple[str, str, str, str, Optional[LabelSet], str, float]


class AuditLog:
    """A bounded, thread-safe, in-memory audit log.

    ``capacity`` bounds memory for long-running deployments; the oldest
    records are discarded first, while the per-decision counters keep
    exact totals forever.

    Hot paths (the broker's per-delivery decisions) record through
    :meth:`note`, which — in the default *buffered* mode — appends a raw
    tuple to a ring buffer and defers :class:`AuditRecord` construction,
    locking and counter updates to :meth:`flush`. Every query flushes
    first, so observers always see a complete, exact log; the only
    difference from eager mode is *when* the formatting cost is paid.
    With ``buffered=False``, :meth:`note` records eagerly, for
    deployments that need each record materialised before the next
    operation proceeds.
    """

    def __init__(
        self,
        capacity: int = 10_000,
        clock: Callable[[], float] = time.time,
        buffered: bool = True,
    ):
        self._lock = threading.Lock()
        self._records: List[AuditRecord] = []
        self._capacity = capacity
        self._clock = clock
        self._counters: Dict[tuple, int] = {}
        self._buffered = buffered
        self._pending: Deque[_PendingEntry] = deque()
        #: Flush when this many decisions are pending, so the buffer is a
        #: bounded ring even if no one queries the log for a long time.
        #: Deliberately larger than small capacities: a flush only
        #: materialises the last ``capacity`` entries (older ones would
        #: be evicted immediately), so a big batch amortises formatting.
        self._flush_threshold = max(256, min(capacity, 4096))

    def record(
        self,
        component: str,
        operation: str,
        principal: str,
        decision: str,
        labels: Optional[LabelSet] = None,
        detail: str = "",
    ) -> AuditRecord:
        # Materialise any deferred notes first so the record list keeps
        # its chronological order when eager and deferred callers share
        # one log.
        self.flush()
        entry = AuditRecord(
            record_id=next(_record_ids),
            timestamp=self._clock(),
            component=component,
            operation=operation,
            principal=principal,
            decision=decision,
            labels=labels or LabelSet(),
            detail=detail,
        )
        with self._lock:
            self._records.append(entry)
            if len(self._records) > self._capacity:
                del self._records[: len(self._records) - self._capacity]
            key = (component, operation, decision)
            self._counters[key] = self._counters.get(key, 0) + 1
        return entry

    def allowed(self, component: str, operation: str, principal: str, **kwargs) -> AuditRecord:
        return self.record(component, operation, principal, ALLOWED, **kwargs)

    def denied(self, component: str, operation: str, principal: str, **kwargs) -> AuditRecord:
        return self.record(component, operation, principal, DENIED, **kwargs)

    # -- deferred recording (hot paths) -----------------------------------

    def note(
        self,
        component: str,
        operation: str,
        principal: str,
        decision: str,
        labels: Optional[LabelSet] = None,
        detail: str = "",
    ) -> None:
        """Record a decision without materialising the record yet.

        Identical observable content to :meth:`record` — the entry
        appears in :meth:`records` / :meth:`count` after the implicit
        flush every query performs — but the hot path pays only a
        timestamp and a lock-free ring append.
        """
        if not self._buffered:
            self.record(component, operation, principal, decision, labels, detail)
            return
        self._pending.append(
            (component, operation, principal, decision, labels, detail, self._clock())
        )
        if len(self._pending) >= self._flush_threshold:
            self.flush()

    def flush(self) -> int:
        """Materialise pending :meth:`note` entries; returns how many.

        Counters are updated for *every* pending decision (totals stay
        exact), but :class:`AuditRecord` objects are only built for the
        newest ``capacity`` entries — anything older would be evicted by
        the ring bound the moment it was appended.
        """
        pending = self._pending
        if not pending:
            return 0
        with self._lock:
            # Drain under the lock: concurrent flushes must not partition
            # the pending entries, or records would interleave out of
            # order and the ring trim could evict the wrong batch.
            drained: List[_PendingEntry] = []
            for _ in range(len(pending)):
                try:
                    drained.append(pending.popleft())
                except IndexError:
                    break
            if not drained:
                return 0
            counters = self._counters
            for entry in drained:
                key = (entry[0], entry[1], entry[3])
                counters[key] = counters.get(key, 0) + 1
            records = self._records
            keep_from = max(0, len(drained) - self._capacity)
            for component, operation, principal, decision, labels, detail, when in drained[
                keep_from:
            ]:
                records.append(
                    AuditRecord(
                        record_id=next(_record_ids),
                        timestamp=when,
                        component=component,
                        operation=operation,
                        principal=principal,
                        decision=decision,
                        labels=labels or LabelSet(),
                        detail=detail,
                    )
                )
            if len(records) > self._capacity:
                del records[: len(records) - self._capacity]
        return len(drained)

    # -- queries ---------------------------------------------------------

    def records(
        self,
        component: Optional[str] = None,
        decision: Optional[str] = None,
        principal: Optional[str] = None,
    ) -> List[AuditRecord]:
        self.flush()
        with self._lock:
            snapshot = list(self._records)
        return [
            record
            for record in snapshot
            if (component is None or record.component == component)
            and (decision is None or record.decision == decision)
            and (principal is None or record.principal == principal)
        ]

    def denials(self, component: Optional[str] = None) -> List[AuditRecord]:
        return self.records(component=component, decision=DENIED)

    def count(
        self,
        component: Optional[str] = None,
        operation: Optional[str] = None,
        decision: Optional[str] = None,
    ) -> int:
        self.flush()
        with self._lock:
            return sum(
                value
                for (comp, oper, dec), value in self._counters.items()
                if (component is None or comp == component)
                and (operation is None or oper == operation)
                and (decision is None or dec == decision)
            )

    def total_decisions(self) -> int:
        """Exact count of decisions ever recorded (survives eviction).

        The cluster drain protocol uses this as a per-process activity
        counter: two consecutive identical totals with empty queues mean
        the process made no enforcement decision in between.
        """
        self.flush()
        with self._lock:
            return sum(self._counters.values())

    def clear(self) -> None:
        with self._lock:
            self._pending.clear()
            self._records.clear()
            self._counters.clear()

    def __len__(self) -> int:
        self.flush()
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterable[AuditRecord]:
        return iter(self.records())


_default_log = AuditLog()


def default_audit_log() -> AuditLog:
    """The process-wide audit log used when components are not injected one."""
    return _default_log
