"""Audit log of label checks and security decisions.

SafeWeb's value proposition (§2) is reducing *audit effort*: once the
middleware is trusted, organisations audit its decisions instead of every
application's code path. This module records every enforcement decision —
grants and denials alike — with the principal, operation, labels involved
and the component that made the check, so deployments can demonstrate
compliance after the fact.

The log is process-wide but injectable: components accept an ``audit``
argument and default to :func:`default_audit_log`.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.labels import LabelSet

#: Decision outcomes.
ALLOWED = "allowed"
DENIED = "denied"

_record_ids = itertools.count(1)


@dataclass(frozen=True)
class AuditRecord:
    """One enforcement decision."""

    record_id: int
    timestamp: float
    component: str  # e.g. "broker", "engine", "frontend", "store"
    operation: str  # e.g. "deliver", "publish", "declassify", "respond"
    principal: str
    decision: str  # ALLOWED | DENIED
    labels: LabelSet = field(default_factory=LabelSet)
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.record_id,
            "timestamp": self.timestamp,
            "component": self.component,
            "operation": self.operation,
            "principal": self.principal,
            "decision": self.decision,
            "labels": self.labels.to_uris(),
            "detail": self.detail,
        }


class AuditLog:
    """A bounded, thread-safe, in-memory audit log.

    ``capacity`` bounds memory for long-running deployments; the oldest
    records are discarded first, while the per-decision counters keep
    exact totals forever.
    """

    def __init__(self, capacity: int = 10_000, clock: Callable[[], float] = time.time):
        self._lock = threading.Lock()
        self._records: List[AuditRecord] = []
        self._capacity = capacity
        self._clock = clock
        self._counters: Dict[tuple, int] = {}

    def record(
        self,
        component: str,
        operation: str,
        principal: str,
        decision: str,
        labels: Optional[LabelSet] = None,
        detail: str = "",
    ) -> AuditRecord:
        entry = AuditRecord(
            record_id=next(_record_ids),
            timestamp=self._clock(),
            component=component,
            operation=operation,
            principal=principal,
            decision=decision,
            labels=labels or LabelSet(),
            detail=detail,
        )
        with self._lock:
            self._records.append(entry)
            if len(self._records) > self._capacity:
                del self._records[: len(self._records) - self._capacity]
            key = (component, operation, decision)
            self._counters[key] = self._counters.get(key, 0) + 1
        return entry

    def allowed(self, component: str, operation: str, principal: str, **kwargs) -> AuditRecord:
        return self.record(component, operation, principal, ALLOWED, **kwargs)

    def denied(self, component: str, operation: str, principal: str, **kwargs) -> AuditRecord:
        return self.record(component, operation, principal, DENIED, **kwargs)

    # -- queries ---------------------------------------------------------

    def records(
        self,
        component: Optional[str] = None,
        decision: Optional[str] = None,
        principal: Optional[str] = None,
    ) -> List[AuditRecord]:
        with self._lock:
            snapshot = list(self._records)
        return [
            record
            for record in snapshot
            if (component is None or record.component == component)
            and (decision is None or record.decision == decision)
            and (principal is None or record.principal == principal)
        ]

    def denials(self, component: Optional[str] = None) -> List[AuditRecord]:
        return self.records(component=component, decision=DENIED)

    def count(
        self,
        component: Optional[str] = None,
        operation: Optional[str] = None,
        decision: Optional[str] = None,
    ) -> int:
        with self._lock:
            return sum(
                value
                for (comp, oper, dec), value in self._counters.items()
                if (component is None or comp == component)
                and (operation is None or oper == operation)
                and (decision is None or dec == decision)
            )

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._counters.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterable[AuditRecord]:
        return iter(self.records())


_default_log = AuditLog()


def default_audit_log() -> AuditLog:
    """The process-wide audit log used when components are not injected one."""
    return _default_log
