"""Policy documents: assigning privileges to units and users (paper §4.1).

Privileges associated with labels are assigned directly to units (in the
backend) and requests (in the frontend) through a *policy specification
file*. This module implements a small declarative text format plus a
JSON-equivalent programmatic form::

    # SafeWeb policy for the MDT web portal
    authority ecric.org.uk

    unit data_producer {
        privileged
        declassification label:conf:ecric.org.uk/patient
    }

    unit data_aggregator {
        clearance label:conf:ecric.org.uk/patient
    }

    user mdt1 {
        password secret1
        mdt 1
        region east
        clearance label:conf:ecric.org.uk/mdt/1
        declassification label:conf:ecric.org.uk/mdt/1
    }

Block bodies contain one directive per line. Privilege directives
(``clearance``, ``declassification``, ``endorsement``,
``clearance_low_integrity``) take a label URI; hierarchical grants apply to
the whole subtree under the URI. ``withhold`` in a unit block names labels
whose events must never be delivered to that (privileged) unit.

For policies with *dynamic* privileges the paper suggests a label manager
that delegates at runtime; :class:`LabelManager` implements that extension.
"""

from __future__ import annotations

import os

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.labels import Label, parse_label
from repro.core.principals import UnitPrincipal, UserPrincipal
from repro.core.privileges import PRIVILEGE_KINDS, PrivilegeSet
from repro.exceptions import LabelError, PolicyError

_PRIVILEGE_DIRECTIVES = set(PRIVILEGE_KINDS)


@dataclass
class UnitSpec:
    """Parsed ``unit`` block."""

    name: str
    privileged: bool = False
    grants: Dict[str, List[str]] = field(default_factory=dict)
    withhold: List[str] = field(default_factory=list)

    def build(self) -> UnitPrincipal:
        return UnitPrincipal(
            self.name,
            privileges=PrivilegeSet(self.grants),
            privileged=self.privileged,
            withheld_labels=self.withhold,
        )


@dataclass
class UserSpec:
    """Parsed ``user`` block."""

    name: str
    password: Optional[str] = None
    password_salt: Optional[str] = None
    password_digest: Optional[str] = None
    mdt_id: Optional[str] = None
    region: Optional[str] = None
    grants: Dict[str, List[str]] = field(default_factory=dict)

    def build(self) -> UserPrincipal:
        return UserPrincipal(
            self.name,
            privileges=PrivilegeSet(self.grants),
            password=self.password,
            password_salt=self.password_salt,
            password_digest=self.password_digest,
            mdt_id=self.mdt_id,
            region=self.region,
        )


@dataclass
class PolicyDocument:
    """The parsed, declarative form of a policy file."""

    authority: str = ""
    units: Dict[str, UnitSpec] = field(default_factory=dict)
    users: Dict[str, UserSpec] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "authority": self.authority,
            "units": {
                name: {
                    "privileged": spec.privileged,
                    "grants": spec.grants,
                    "withhold": spec.withhold,
                }
                for name, spec in self.units.items()
            },
            "users": {
                name: {
                    "password": spec.password,
                    "password_salt": spec.password_salt,
                    "password_digest": spec.password_digest,
                    "mdt": spec.mdt_id,
                    "region": spec.region,
                    "grants": spec.grants,
                }
                for name, spec in self.users.items()
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PolicyDocument":
        payload = json.loads(text)
        document = cls(authority=payload.get("authority", ""))
        for name, body in payload.get("units", {}).items():
            document.units[name] = UnitSpec(
                name=name,
                privileged=bool(body.get("privileged")),
                grants={kind: list(labels) for kind, labels in body.get("grants", {}).items()},
                withhold=list(body.get("withhold", [])),
            )
        for name, body in payload.get("users", {}).items():
            document.users[name] = UserSpec(
                name=name,
                password=body.get("password"),
                password_salt=body.get("password_salt"),
                password_digest=body.get("password_digest"),
                mdt_id=body.get("mdt"),
                region=body.get("region"),
                grants={kind: list(labels) for kind, labels in body.get("grants", {}).items()},
            )
        return document


class Policy:
    """Built principals, ready for enforcement.

    The engine asks for unit principals, the web middleware for user
    principals. Lookups never return ``None`` silently: unknown names
    raise :class:`PolicyError` so misconfigurations fail closed.
    """

    def __init__(self, document: PolicyDocument):
        self.document = document
        self.authority = document.authority
        self._units = {name: spec.build() for name, spec in document.units.items()}
        self._users = {name: spec.build() for name, spec in document.users.items()}

    # -- lookups -------------------------------------------------------------

    def unit(self, name: str) -> UnitPrincipal:
        try:
            return self._units[name]
        except KeyError:
            raise PolicyError(f"no unit {name!r} in policy") from None

    def user(self, name: str) -> UserPrincipal:
        try:
            return self._users[name]
        except KeyError:
            raise PolicyError(f"no user {name!r} in policy") from None

    def find_user(self, name: str) -> Optional[UserPrincipal]:
        """Case-*sensitive* lookup returning ``None`` when absent.

        The §5.2 "errors in access checks" experiment injects a
        case-insensitive variant of this lookup to show SafeWeb containing
        the resulting privilege confusion.
        """
        return self._users.get(name)

    @property
    def unit_names(self) -> List[str]:
        return sorted(self._units)

    @property
    def user_names(self) -> List[str]:
        return sorted(self._users)

    # -- mutation (programmatic policies) -------------------------------------

    def add_unit(self, unit: UnitPrincipal) -> None:
        self._units[unit.name] = unit

    def add_user(self, user: UserPrincipal) -> None:
        self._users[user.name] = user


def parse_policy(text: str) -> Policy:
    """Parse the text policy format into a ready :class:`Policy`."""
    return Policy(parse_policy_document(text))


def _validate_label(uri: str, lineno: int) -> None:
    try:
        parse_label(uri)
    except LabelError as exc:
        raise PolicyError(f"line {lineno}: {exc}") from exc


def parse_policy_document(text: str) -> PolicyDocument:
    document = PolicyDocument()
    block_kind: Optional[str] = None
    block_name: Optional[str] = None
    unit_spec: Optional[UnitSpec] = None
    user_spec: Optional[UserSpec] = None

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()

        if block_kind is None:
            if tokens[0] == "authority" and len(tokens) == 2:
                document.authority = tokens[1]
            elif tokens[0] in ("unit", "user") and len(tokens) == 3 and tokens[2] == "{":
                block_kind, block_name = tokens[0], tokens[1]
                if block_kind == "unit":
                    if block_name in document.units:
                        raise PolicyError(f"line {lineno}: duplicate unit {block_name!r}")
                    unit_spec = UnitSpec(name=block_name)
                else:
                    if block_name in document.users:
                        raise PolicyError(f"line {lineno}: duplicate user {block_name!r}")
                    user_spec = UserSpec(name=block_name)
            else:
                raise PolicyError(f"line {lineno}: unexpected top-level directive {line!r}")
            continue

        if tokens == ["}"]:
            if block_kind == "unit":
                document.units[block_name] = unit_spec
            else:
                document.users[block_name] = user_spec
            block_kind = block_name = unit_spec = user_spec = None
            continue

        directive, args = tokens[0], tokens[1:]
        if directive in _PRIVILEGE_DIRECTIVES:
            if len(args) != 1:
                raise PolicyError(f"line {lineno}: {directive} expects one label URI")
            _validate_label(args[0], lineno)
            spec = unit_spec if block_kind == "unit" else user_spec
            spec.grants.setdefault(directive, []).append(args[0])
        elif block_kind == "unit" and directive == "privileged" and not args:
            unit_spec.privileged = True
        elif block_kind == "unit" and directive == "withhold" and len(args) == 1:
            _validate_label(args[0], lineno)
            unit_spec.withhold.append(args[0])
        elif block_kind == "user" and directive == "password" and len(args) == 1:
            user_spec.password = args[0]
        elif block_kind == "user" and directive == "password_digest" and len(args) == 2:
            user_spec.password_salt, user_spec.password_digest = args
        elif block_kind == "user" and directive == "mdt" and len(args) == 1:
            user_spec.mdt_id = args[0]
        elif block_kind == "user" and directive == "region" and len(args) == 1:
            user_spec.region = args[0]
        else:
            raise PolicyError(
                f"line {lineno}: unknown directive {directive!r} in {block_kind} block"
            )

    if block_kind is not None:
        raise PolicyError(f"unterminated {block_kind} block {block_name!r}")
    return document


def load_policy(path: "str | os.PathLike[str]") -> Policy:
    """Load a policy from a ``.policy`` (text) or ``.json`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if str(path).endswith(".json"):
        return Policy(PolicyDocument.from_json(text))
    return parse_policy(text)


class LabelManager:
    """Runtime privilege delegation (the paper's §4.1 extension point).

    Each label has an *owner* — the principal that created it. The owner
    implicitly holds every privilege over the label and may delegate any
    subset to other principals. Delegations may themselves be marked
    delegatable, forming a chain; revoking a delegation revokes everything
    granted *through* it.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._owners: Dict[Label, str] = {}
        # (kind, label, grantee) -> (granter, delegatable)
        self._delegations: Dict[tuple, tuple] = {}

    def create_label(self, owner: str, label: Label | str) -> Label:
        if isinstance(label, str):
            label = parse_label(label)
        with self._lock:
            current = self._owners.get(label)
            if current is not None and current != owner:
                raise PolicyError(f"label {label.uri} already owned by {current!r}")
            self._owners[label] = owner
        return label

    def owner_of(self, label: Label) -> Optional[str]:
        with self._lock:
            return self._owners.get(label)

    def delegate(
        self,
        granter: str,
        grantee: str,
        kind: str,
        label: Label | str,
        delegatable: bool = False,
    ) -> None:
        """Record a delegation after verifying the granter's authority."""
        if kind not in PRIVILEGE_KINDS:
            raise PolicyError(f"unknown privilege kind {kind!r}")
        if isinstance(label, str):
            label = parse_label(label)
        with self._lock:
            if not self._may_grant_locked(granter, kind, label):
                raise PolicyError(
                    f"{granter!r} holds no delegatable {kind} over {label.uri}"
                )
            self._delegations[(kind, label, grantee)] = (granter, delegatable)

    def revoke(self, granter: str, grantee: str, kind: str, label: Label | str) -> None:
        """Remove a delegation and, transitively, grants made through it."""
        if isinstance(label, str):
            label = parse_label(label)
        with self._lock:
            key = (kind, label, grantee)
            entry = self._delegations.get(key)
            if entry is None or entry[0] != granter:
                raise PolicyError(
                    f"no delegation of {kind} over {label.uri} from {granter!r} to {grantee!r}"
                )
            del self._delegations[key]
            self._revoke_orphans_locked()

    def privileges_of(self, principal: str) -> PrivilegeSet:
        """The privilege set a principal currently holds via this manager."""
        with self._lock:
            grants: Dict[str, List[Label]] = {}
            for label, owner in self._owners.items():
                if owner == principal:
                    for kind in PRIVILEGE_KINDS:
                        grants.setdefault(kind, []).append(label)
            for (kind, label, grantee), _entry in self._delegations.items():
                if grantee == principal:
                    grants.setdefault(kind, []).append(label)
            return PrivilegeSet(grants)

    def holds(self, principal: str, kind: str, label: Label) -> bool:
        with self._lock:
            return self._holds_locked(principal, kind, label)

    # -- internal ------------------------------------------------------------

    def _holds_locked(self, principal: str, kind: str, label: Label) -> bool:
        if self._owners.get(label) == principal:
            return True
        return (kind, label, principal) in self._delegations

    def _may_grant_locked(self, granter: str, kind: str, label: Label) -> bool:
        if self._owners.get(label) == granter:
            return True
        entry = self._delegations.get((kind, label, granter))
        return entry is not None and entry[1]  # delegatable

    def _revoke_orphans_locked(self) -> None:
        # Iterate until fixpoint: a delegation is valid only while its
        # granter still holds a grantable privilege.
        changed = True
        while changed:
            changed = False
            for key, (granter, _delegatable) in list(self._delegations.items()):
                kind, label, _grantee = key
                if not self._may_grant_locked(granter, kind, label):
                    del self._delegations[key]
                    changed = True
