"""Security labels and label sets (paper §4.1), hash-consed.

SafeWeb associates a set of security labels with each event in the backend
and with each variable in the frontend. There are two kinds:

* **confidentiality** labels prevent sensitive data from escaping a system
  boundary. They are *sticky*: every value derived from a labeled value
  carries the label too, so when two label sets combine, confidentiality
  labels take the **union**.
* **integrity** labels certify provenance. They are *fragile*: a derived
  value carries an integrity label only if *every* input carried it, so
  when label sets combine, integrity labels take the **intersection**.

Labels are represented as URIs, e.g.::

    label:conf:ecric.org.uk/patient/33812769
    label:int:ecric.org.uk/mdt

The authority component names the organisation that owns the label; the
path component scopes it (a patient, an MDT, a region, …).

Performance model (the taint fast path)
---------------------------------------

Label tracking is the frontend's per-operation tax, so both classes are
**interned**: constructing a :class:`Label` or :class:`LabelSet` that
already exists returns the canonical instance from a global intern table.
Interning buys three things on the hot path:

* equality degenerates to identity for the common case (``a is b``),
  and the empty set is a singleton every layer can ``is``-check;
* hashes and the confidentiality/integrity partitions are computed once
  at construction and reused forever, so clearance checks stop
  re-scanning sets with generator expressions;
* the IFC operators (:meth:`LabelSet.combine`, :meth:`LabelSet.flows_to`,
  set algebra) can be memoized on operand identity through a bounded LRU
  that never needs invalidation, because every instance is immutable.

Validation runs only on an intern miss, so repeated construction of the
same label amortises its own checking away. The intern tables are
process-global **weak-valued** mappings: canonical instances stay alive
exactly as long as something references them (an event, a labeled value,
a memo entry), so per-patient label churn in a long-running process is
reclaimed by the GC instead of pinned forever. The operator memos are
bounded LRUs.
"""

from __future__ import annotations

import re
import weakref
from functools import lru_cache
from typing import FrozenSet, Iterable, Iterator, Tuple

from repro.exceptions import LabelError

#: Label kind for confidentiality ("sticky") labels.
CONFIDENTIALITY = "conf"
#: Label kind for integrity ("fragile") labels.
INTEGRITY = "int"

_KINDS = (CONFIDENTIALITY, INTEGRITY)

_URI_RE = re.compile(
    r"^label:(?P<kind>conf|int):(?P<authority>[A-Za-z0-9.\-]+)(?P<path>(?:/[A-Za-z0-9._\-]+)*)$"
)

#: Bound for the binary-operator memo tables. Label diversity in one
#: process is policy-defined and small; 8192 distinct *pairs* is far
#: beyond any deployment in the paper while still bounding memory.
_MEMO_SIZE = 8192


class Label:
    """A single tamper-resistant, interned security label.

    Instances are immutable, hashable and canonical: constructing the
    same ``(kind, authority, path)`` twice yields the *same* object, so
    label comparisons inside hot frozenset operations short-circuit on
    identity. Use :func:`conf_label` / :func:`int_label` for convenient
    construction and :func:`parse_label` to parse the URI form.
    """

    __slots__ = ("kind", "authority", "path", "_uri", "_hash", "__weakref__")

    _intern: "weakref.WeakValueDictionary[Tuple[str, str, Tuple[str, ...]], Label]" = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, kind: str, authority: str, path: Iterable[str] = ()) -> "Label":
        if not isinstance(path, tuple):
            # Accept any iterable of path segments for convenience.
            path = tuple(path)
        key = (kind, authority, path)
        interned = cls._intern.get(key)
        if interned is not None:
            return interned
        # Validation only runs on an intern miss: a cache hit proves the
        # label was already validated.
        if kind not in _KINDS:
            raise LabelError(f"unknown label kind {kind!r}; expected 'conf' or 'int'")
        if not authority:
            raise LabelError("label authority must be non-empty")
        for segment in path:
            if not segment or "/" in segment:
                raise LabelError(f"invalid label path segment {segment!r}")
        instance = super().__new__(cls)
        object.__setattr__(instance, "kind", kind)
        object.__setattr__(instance, "authority", authority)
        object.__setattr__(instance, "path", path)
        suffix = "".join(f"/{segment}" for segment in path)
        object.__setattr__(instance, "_uri", f"label:{kind}:{authority}{suffix}")
        object.__setattr__(instance, "_hash", hash(key))
        cls._intern[key] = instance
        return instance

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Label instances are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Label instances are immutable")

    @property
    def uri(self) -> str:
        """The canonical URI form, e.g. ``label:conf:ecric.org.uk/patient/1``."""
        return self._uri

    @property
    def is_confidentiality(self) -> bool:
        return self.kind == CONFIDENTIALITY

    @property
    def is_integrity(self) -> bool:
        return self.kind == INTEGRITY

    def child(self, *segments: str) -> "Label":
        """A label scoped below this one, e.g. ``mdt_label.child('42')``."""
        return Label(self.kind, self.authority, self.path + tuple(segments))

    def is_ancestor_of(self, other: "Label") -> bool:
        """True when *other* is scoped at or below this label's path.

        Hierarchical scoping is a convenience for policy files ("clearance
        for everything under ``/patient``"); enforcement itself always
        compares exact labels.
        """
        return (
            self.kind == other.kind
            and self.authority == other.authority
            and other.path[: len(self.path)] == self.path
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            # Interning makes identity the common-case answer.
            return True
        if isinstance(other, Label):
            return (
                self.kind == other.kind
                and self.authority == other.authority
                and self.path == other.path
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> "Tuple[type, Tuple[str, str, Tuple[str, ...]]]":
        # Re-intern on unpickle so canonical identity survives transport.
        return (Label, (self.kind, self.authority, self.path))

    def __copy__(self) -> "Label":
        return self

    def __deepcopy__(self, memo: object) -> "Label":
        return self

    def __str__(self) -> str:
        return self._uri

    def __repr__(self) -> str:
        return f"Label({self._uri!r})"


def conf_label(authority: str, *path: str) -> Label:
    """Construct a confidentiality label: ``conf_label('ecric.org.uk', 'patient', '1')``."""
    return Label(CONFIDENTIALITY, authority, path)


def int_label(authority: str, *path: str) -> Label:
    """Construct an integrity label: ``int_label('ecric.org.uk', 'mdt')``."""
    return Label(INTEGRITY, authority, path)


@lru_cache(maxsize=4096)
def parse_label(uri: str) -> Label:
    """Parse the URI form produced by :attr:`Label.uri`.

    Parsing is LRU-cached on the URI text: document loads re-present the
    same few label URIs over and over, so the regex runs once per
    distinct URI. (Failures raise and are never cached.)

    >>> parse_label("label:conf:ecric.org.uk/patient/33812769")
    Label('label:conf:ecric.org.uk/patient/33812769')
    """
    match = _URI_RE.match(uri)
    if match is None:
        raise LabelError(f"malformed label URI {uri!r}")
    path = tuple(segment for segment in match.group("path").split("/") if segment)
    return Label(match.group("kind"), match.group("authority"), path)


def _coerce(value: object) -> Label:
    if isinstance(value, Label):
        return value
    if isinstance(value, str):
        return parse_label(value)
    raise LabelError(f"cannot interpret {value!r} as a label")


class LabelSet:
    """An immutable, interned set of labels with IFC flow composition.

    The two composition rules of §4.1 are implemented by :meth:`combine`:
    confidentiality labels are *sticky* (union) and integrity labels are
    *fragile* (intersection). :meth:`flows_to` implements the lattice
    ordering used for every clearance check in the middleware.

    ``LabelSet`` supports the usual set protocol (iteration, ``in``,
    ``len``, ``|``, ``-``, comparison) and is hashable. Instances are
    canonical: equal sets are the *same* object, the confidentiality and
    integrity partitions are precomputed frozensets, and the hash is
    cached at construction.
    """

    __slots__ = (
        "_labels",
        "_confidentiality",
        "_integrity",
        "_conf_only",
        "_hash",
        "_uris",
        "__weakref__",
    )

    _intern: "weakref.WeakValueDictionary[FrozenSet[Label], LabelSet]" = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, labels: "LabelSet | Iterable[Label | str]" = ()) -> "LabelSet":
        if isinstance(labels, LabelSet):
            return labels
        frozen = frozenset(
            label if type(label) is Label else _coerce(label) for label in labels
        )
        interned = cls._intern.get(frozen)
        if interned is not None:
            return interned
        return cls._build(frozen)

    @classmethod
    def _from_frozen(cls, frozen: FrozenSet[Label]) -> "LabelSet":
        """Internal constructor for pre-coerced frozensets of Labels."""
        interned = cls._intern.get(frozen)
        if interned is not None:
            return interned
        return cls._build(frozen)

    @classmethod
    def _build(cls, frozen: FrozenSet[Label]) -> "LabelSet":
        instance = super().__new__(cls)
        conf = frozenset(label for label in frozen if label.kind == CONFIDENTIALITY)
        instance._labels = frozen
        instance._confidentiality = conf
        instance._integrity = frozen - conf
        instance._hash = hash(frozen)
        instance._uris = None
        # Fully initialise before publishing so a concurrent reader can
        # never observe a half-built instance. No recursion risk: when
        # integrity labels exist, conf != frozen, so _from_frozen(conf)
        # builds a *different* key; a pure-conf set is its own projection.
        instance._conf_only = instance if conf == frozen else cls._from_frozen(conf)
        cls._intern[frozen] = instance
        return instance

    # -- construction ----------------------------------------------------

    @classmethod
    def of(cls, *labels: Label | str) -> "LabelSet":
        """Variadic constructor: ``LabelSet.of(l1, l2)``."""
        return cls(labels)

    @classmethod
    def empty(cls) -> "LabelSet":
        return _EMPTY

    # -- partitions ------------------------------------------------------

    @property
    def confidentiality(self) -> FrozenSet[Label]:
        """The confidentiality ("sticky") labels in this set (precomputed)."""
        return self._confidentiality

    @property
    def integrity(self) -> FrozenSet[Label]:
        """The integrity ("fragile") labels in this set (precomputed)."""
        return self._integrity

    # -- IFC composition -------------------------------------------------

    def combine(self, *others: "LabelSet") -> "LabelSet":
        """The label set of data derived from ``self`` and ``others``.

        Confidentiality labels union (a derived value is as secret as
        everything that went into it); integrity labels intersect (a
        derived value is only as trustworthy as its least trusted input).

        Fast paths cover the dominant cases without touching the memo:
        combining a set with itself is the identity, and combining with
        the empty set keeps confidentiality while dropping integrity
        (the precomputed conf-only projection).
        """
        result = self
        for other in others:
            if not isinstance(other, LabelSet):
                other = LabelSet(other)
            if other is result:
                continue
            if not other._labels:
                result = result._conf_only
            elif not result._labels:
                result = other._conf_only
            else:
                result = _combine2(result, other)
        return result

    def flows_to(self, clearance: "LabelSet | Iterable[Label]") -> bool:
        """True when data with these labels may be released to a principal
        holding *clearance* over the given confidentiality labels.

        Only confidentiality labels restrict release; integrity labels
        restrict *acceptance* and are checked by :meth:`meets_integrity`.
        """
        if not isinstance(clearance, LabelSet):
            clearance = LabelSet(clearance)
        if not self._confidentiality or clearance is self:
            return True
        return _flows2(self, clearance)

    def meets_integrity(self, required: "LabelSet | Iterable[Label]") -> bool:
        """True when this data carries every integrity label in *required*."""
        if not isinstance(required, LabelSet):
            required = LabelSet(required)
        return required._integrity <= self._integrity

    # -- set algebra -------------------------------------------------------

    def add(self, *labels: Label | str) -> "LabelSet":
        """A new set with *labels* added.

        Adding confidentiality labels never requires privilege (§4.1: "it
        is always possible to add extra confidentiality labels"); adding
        integrity labels *does* — that check lives in the engine, which
        calls this only after verifying endorsement privileges.
        """
        if not labels:
            return self
        coerced = {label if type(label) is Label else _coerce(label) for label in labels}
        return LabelSet._from_frozen(self._labels | coerced)

    def remove(self, *labels: Label | str) -> "LabelSet":
        """A new set with *labels* removed (declassification/weakening).

        The privilege check (declassification for confidentiality labels)
        is performed by the caller — the engine or the frontend — not here.
        """
        if not labels or not self._labels:
            return self
        coerced = {label if type(label) is Label else _coerce(label) for label in labels}
        return LabelSet._from_frozen(self._labels - coerced)

    def union(self, other: "LabelSet | Iterable[Label]") -> "LabelSet":
        if not isinstance(other, LabelSet):
            other = LabelSet(other)
        if other is self or not other._labels:
            return self
        if not self._labels:
            return other
        return _union2(self, other)

    def difference(self, other: "LabelSet | Iterable[Label]") -> "LabelSet":
        if not isinstance(other, LabelSet):
            other = LabelSet(other)
        if not other._labels or not self._labels:
            return self
        if other is self:
            return _EMPTY
        return LabelSet._from_frozen(self._labels - other._labels)

    def intersection(self, other: "LabelSet | Iterable[Label]") -> "LabelSet":
        if not isinstance(other, LabelSet):
            other = LabelSet(other)
        if other is self:
            return self
        if not other._labels or not self._labels:
            return _EMPTY
        return LabelSet._from_frozen(self._labels & other._labels)

    __or__ = union
    __sub__ = difference
    __and__ = intersection

    # -- protocol ----------------------------------------------------------

    def __iter__(self) -> Iterator[Label]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: object) -> bool:
        try:
            return _coerce(label) in self._labels
        except LabelError:
            return False

    def __bool__(self) -> bool:
        return bool(self._labels)

    def __eq__(self, other: object) -> bool:
        if self is other:
            # Interned: equal sets are the same object.
            return True
        if isinstance(other, LabelSet):
            return self._labels == other._labels
        if isinstance(other, (set, frozenset)):
            return self._labels == other
        return NotImplemented

    def __le__(self, other: "LabelSet") -> bool:
        if not isinstance(other, LabelSet):
            other = LabelSet(other)
        return other is self or self._labels <= other._labels

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._labels:
            return "LabelSet()"
        uris = ", ".join(self.to_uris())
        return f"LabelSet({{{uris}}})"

    def __reduce__(self) -> "Tuple[type, Tuple[Tuple[Label, ...]]]":
        # Re-intern on unpickle; Labels re-intern through their own reduce.
        return (LabelSet, (tuple(self._labels),))

    def __copy__(self) -> "LabelSet":
        return self

    def __deepcopy__(self, memo: object) -> "LabelSet":
        return self

    # -- serialisation -----------------------------------------------------

    def to_uris(self) -> list[str]:
        """A sorted list of label URIs, the wire representation."""
        uris = self._uris
        if uris is None:
            uris = tuple(sorted(label._uri for label in self._labels))
            self._uris = uris
        return list(uris)

    @classmethod
    def from_uris(cls, uris: Iterable[str]) -> "LabelSet":
        return _set_from_uris(tuple(uris))


@lru_cache(maxsize=_MEMO_SIZE)
def _combine2(a: LabelSet, b: LabelSet) -> LabelSet:
    """Memoized binary §4.1 combination of two interned, non-empty sets."""
    return LabelSet._from_frozen(
        a._confidentiality | b._confidentiality | (a._integrity & b._integrity)
    )


def combine_pair(a: LabelSet, b: LabelSet) -> LabelSet:
    """Binary §4.1 combination with the identity fast paths exposed.

    The taint layer's derive pipeline folds through this directly: the
    dominant shapes (same interned set twice, labeled-with-plain) resolve
    without touching the memo or allocating.
    """
    if a is b:
        return a
    if not b._labels:
        return a._conf_only
    if not a._labels:
        return b._conf_only
    return _combine2(a, b)


@lru_cache(maxsize=_MEMO_SIZE)
def _union2(a: LabelSet, b: LabelSet) -> LabelSet:
    return LabelSet._from_frozen(a._labels | b._labels)


@lru_cache(maxsize=_MEMO_SIZE)
def _flows2(a: LabelSet, clearance: LabelSet) -> bool:
    return a._confidentiality <= clearance._confidentiality


@lru_cache(maxsize=4096)
def _set_from_uris(uris: Tuple[str, ...]) -> LabelSet:
    return LabelSet(parse_label(uri) for uri in uris)


_EMPTY = LabelSet()

#: The canonical empty label set — safe to ``is``-check anywhere.
EMPTY_LABELS = _EMPTY


def lattice_stats() -> dict:
    """Observability: intern-table sizes and operator-memo hit rates."""
    return {
        "labels_interned": len(Label._intern),
        "label_sets_interned": len(LabelSet._intern),
        "combine_memo": _combine2.cache_info()._asdict(),
        "union_memo": _union2.cache_info()._asdict(),
        "flows_memo": _flows2.cache_info()._asdict(),
        "parse_cache": parse_label.cache_info()._asdict(),
        "from_uris_cache": _set_from_uris.cache_info()._asdict(),
    }
