"""Security labels and label sets (paper §4.1).

SafeWeb associates a set of security labels with each event in the backend
and with each variable in the frontend. There are two kinds:

* **confidentiality** labels prevent sensitive data from escaping a system
  boundary. They are *sticky*: every value derived from a labeled value
  carries the label too, so when two label sets combine, confidentiality
  labels take the **union**.
* **integrity** labels certify provenance. They are *fragile*: a derived
  value carries an integrity label only if *every* input carried it, so
  when label sets combine, integrity labels take the **intersection**.

Labels are represented as URIs, e.g.::

    label:conf:ecric.org.uk/patient/33812769
    label:int:ecric.org.uk/mdt

The authority component names the organisation that owns the label; the
path component scopes it (a patient, an MDT, a region, …).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator

from repro.exceptions import LabelError

#: Label kind for confidentiality ("sticky") labels.
CONFIDENTIALITY = "conf"
#: Label kind for integrity ("fragile") labels.
INTEGRITY = "int"

_KINDS = (CONFIDENTIALITY, INTEGRITY)

_URI_RE = re.compile(
    r"^label:(?P<kind>conf|int):(?P<authority>[A-Za-z0-9.\-]+)(?P<path>(?:/[A-Za-z0-9._\-]+)*)$"
)


@dataclass(frozen=True, slots=True)
class Label:
    """A single tamper-resistant security label.

    Instances are immutable and hashable so they can live in frozensets
    that travel with events and variables. Use :func:`conf_label` /
    :func:`int_label` for convenient construction and :func:`parse_label`
    to parse the URI form.
    """

    kind: str
    authority: str
    path: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise LabelError(f"unknown label kind {self.kind!r}; expected 'conf' or 'int'")
        if not self.authority:
            raise LabelError("label authority must be non-empty")
        if not isinstance(self.path, tuple):
            # Accept any iterable of path segments for convenience.
            object.__setattr__(self, "path", tuple(self.path))
        for segment in self.path:
            if not segment or "/" in segment:
                raise LabelError(f"invalid label path segment {segment!r}")

    @property
    def uri(self) -> str:
        """The canonical URI form, e.g. ``label:conf:ecric.org.uk/patient/1``."""
        suffix = "".join(f"/{segment}" for segment in self.path)
        return f"label:{self.kind}:{self.authority}{suffix}"

    @property
    def is_confidentiality(self) -> bool:
        return self.kind == CONFIDENTIALITY

    @property
    def is_integrity(self) -> bool:
        return self.kind == INTEGRITY

    def child(self, *segments: str) -> "Label":
        """A label scoped below this one, e.g. ``mdt_label.child('42')``."""
        return Label(self.kind, self.authority, self.path + tuple(segments))

    def is_ancestor_of(self, other: "Label") -> bool:
        """True when *other* is scoped at or below this label's path.

        Hierarchical scoping is a convenience for policy files ("clearance
        for everything under ``/patient``"); enforcement itself always
        compares exact labels.
        """
        return (
            self.kind == other.kind
            and self.authority == other.authority
            and other.path[: len(self.path)] == self.path
        )

    def __str__(self) -> str:
        return self.uri

    def __repr__(self) -> str:
        return f"Label({self.uri!r})"


def conf_label(authority: str, *path: str) -> Label:
    """Construct a confidentiality label: ``conf_label('ecric.org.uk', 'patient', '1')``."""
    return Label(CONFIDENTIALITY, authority, tuple(path))


def int_label(authority: str, *path: str) -> Label:
    """Construct an integrity label: ``int_label('ecric.org.uk', 'mdt')``."""
    return Label(INTEGRITY, authority, tuple(path))


def parse_label(uri: str) -> Label:
    """Parse the URI form produced by :attr:`Label.uri`.

    >>> parse_label("label:conf:ecric.org.uk/patient/33812769")
    Label('label:conf:ecric.org.uk/patient/33812769')
    """
    match = _URI_RE.match(uri)
    if match is None:
        raise LabelError(f"malformed label URI {uri!r}")
    path = tuple(segment for segment in match.group("path").split("/") if segment)
    return Label(match.group("kind"), match.group("authority"), path)


def _coerce(value) -> Label:
    if isinstance(value, Label):
        return value
    if isinstance(value, str):
        return parse_label(value)
    raise LabelError(f"cannot interpret {value!r} as a label")


class LabelSet:
    """An immutable set of labels with IFC flow composition.

    The two composition rules of §4.1 are implemented by :meth:`combine`:
    confidentiality labels are *sticky* (union) and integrity labels are
    *fragile* (intersection). :meth:`flows_to` implements the lattice
    ordering used for every clearance check in the middleware.

    ``LabelSet`` supports the usual set protocol (iteration, ``in``,
    ``len``, ``|``, ``-``, comparison) and is hashable.
    """

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[Label | str] = ()):
        self._labels: FrozenSet[Label] = frozenset(_coerce(label) for label in labels)

    # -- construction ----------------------------------------------------

    @classmethod
    def of(cls, *labels: Label | str) -> "LabelSet":
        """Variadic constructor: ``LabelSet.of(l1, l2)``."""
        return cls(labels)

    @classmethod
    def empty(cls) -> "LabelSet":
        return _EMPTY

    # -- partitions ------------------------------------------------------

    @property
    def confidentiality(self) -> FrozenSet[Label]:
        """The confidentiality ("sticky") labels in this set."""
        return frozenset(label for label in self._labels if label.is_confidentiality)

    @property
    def integrity(self) -> FrozenSet[Label]:
        """The integrity ("fragile") labels in this set."""
        return frozenset(label for label in self._labels if label.is_integrity)

    # -- IFC composition -------------------------------------------------

    def combine(self, *others: "LabelSet") -> "LabelSet":
        """The label set of data derived from ``self`` and ``others``.

        Confidentiality labels union (a derived value is as secret as
        everything that went into it); integrity labels intersect (a
        derived value is only as trustworthy as its least trusted input).
        """
        conf = set(self.confidentiality)
        integ = set(self.integrity)
        for other in others:
            if not isinstance(other, LabelSet):
                other = LabelSet(other)
            conf |= other.confidentiality
            integ &= other.integrity
        return LabelSet(conf | integ)

    def flows_to(self, clearance: "LabelSet | Iterable[Label]") -> bool:
        """True when data with these labels may be released to a principal
        holding *clearance* over the given confidentiality labels.

        Only confidentiality labels restrict release; integrity labels
        restrict *acceptance* and are checked by :meth:`meets_integrity`.
        """
        if not isinstance(clearance, LabelSet):
            clearance = LabelSet(clearance)
        return self.confidentiality <= clearance.confidentiality

    def meets_integrity(self, required: "LabelSet | Iterable[Label]") -> bool:
        """True when this data carries every integrity label in *required*."""
        if not isinstance(required, LabelSet):
            required = LabelSet(required)
        return required.integrity <= self.integrity

    # -- set algebra -------------------------------------------------------

    def add(self, *labels: Label | str) -> "LabelSet":
        """A new set with *labels* added.

        Adding confidentiality labels never requires privilege (§4.1: "it
        is always possible to add extra confidentiality labels"); adding
        integrity labels *does* — that check lives in the engine, which
        calls this only after verifying endorsement privileges.
        """
        return LabelSet(self._labels | {_coerce(label) for label in labels})

    def remove(self, *labels: Label | str) -> "LabelSet":
        """A new set with *labels* removed (declassification/weakening).

        The privilege check (declassification for confidentiality labels)
        is performed by the caller — the engine or the frontend — not here.
        """
        return LabelSet(self._labels - {_coerce(label) for label in labels})

    def union(self, other: "LabelSet | Iterable[Label]") -> "LabelSet":
        if not isinstance(other, LabelSet):
            other = LabelSet(other)
        return LabelSet(self._labels | other._labels)

    def difference(self, other: "LabelSet | Iterable[Label]") -> "LabelSet":
        if not isinstance(other, LabelSet):
            other = LabelSet(other)
        return LabelSet(self._labels - other._labels)

    def intersection(self, other: "LabelSet | Iterable[Label]") -> "LabelSet":
        if not isinstance(other, LabelSet):
            other = LabelSet(other)
        return LabelSet(self._labels & other._labels)

    __or__ = union
    __sub__ = difference
    __and__ = intersection

    # -- protocol ----------------------------------------------------------

    def __iter__(self) -> Iterator[Label]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label) -> bool:
        try:
            return _coerce(label) in self._labels
        except LabelError:
            return False

    def __bool__(self) -> bool:
        return bool(self._labels)

    def __eq__(self, other) -> bool:
        if isinstance(other, LabelSet):
            return self._labels == other._labels
        if isinstance(other, (set, frozenset)):
            return self._labels == other
        return NotImplemented

    def __le__(self, other: "LabelSet") -> bool:
        if not isinstance(other, LabelSet):
            other = LabelSet(other)
        return self._labels <= other._labels

    def __hash__(self) -> int:
        return hash(self._labels)

    def __repr__(self) -> str:
        if not self._labels:
            return "LabelSet()"
        uris = ", ".join(sorted(label.uri for label in self._labels))
        return f"LabelSet({{{uris}}})"

    # -- serialisation -----------------------------------------------------

    def to_uris(self) -> list[str]:
        """A sorted list of label URIs, the wire representation."""
        return sorted(label.uri for label in self._labels)

    @classmethod
    def from_uris(cls, uris: Iterable[str]) -> "LabelSet":
        return cls(parse_label(uri) for uri in uris)


_EMPTY = LabelSet()
