"""Privileges over security labels (paper §4.1).

Label enforcement is managed through privileges held by principals:

* **clearance** — read data protected by a confidentiality label;
* **declassification** — remove a confidentiality label, making the data
  public with respect to that label;
* **endorsement** — add an integrity label, vouching for the data;
* **clearance-to-low-integrity** — accept data that lacks a required
  integrity label.

A :class:`PrivilegeSet` maps each privilege kind to the labels it covers.
Grants may be *hierarchical*: a privilege over ``label:conf:org/patient``
covers every label scoped below it (``…/patient/33812769``). This keeps
policy files short while enforcement still compares concrete labels.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Mapping

from repro.core.labels import Label, LabelSet, parse_label
from repro.exceptions import PolicyError

#: Monotonic id source for :attr:`PrivilegeSet.generation`. Privilege
#: sets are immutable, so a *generation* identifies one fixed grant
#: table: any cache keyed by ``(labelset, generation)`` stays valid for
#: ever, and grant/revoke invalidate it simply by producing a new
#: instance with a new generation.
_generations = itertools.count(1)

#: Bound for the per-instance clearance decision cache.
_COVER_CACHE_LIMIT = 1024

#: Privilege kind: read data carrying a confidentiality label.
CLEARANCE = "clearance"
#: Privilege kind: remove a confidentiality label from data.
DECLASSIFICATION = "declassification"
#: Privilege kind: add an integrity label to data.
ENDORSEMENT = "endorsement"
#: Privilege kind: accept data lacking a required integrity label.
CLEARANCE_LOW_INTEGRITY = "clearance_low_integrity"

PRIVILEGE_KINDS = (
    CLEARANCE,
    DECLASSIFICATION,
    ENDORSEMENT,
    CLEARANCE_LOW_INTEGRITY,
)


class Privilege:
    """A single (kind, label) grant.

    Mostly useful as a unit of delegation; enforcement code works with
    :class:`PrivilegeSet`.
    """

    __slots__ = ("kind", "label")

    def __init__(self, kind: str, label: Label | str):
        if kind not in PRIVILEGE_KINDS:
            raise PolicyError(f"unknown privilege kind {kind!r}")
        if isinstance(label, str):
            label = parse_label(label)
        self.kind = kind
        self.label = label

    def covers(self, label: Label) -> bool:
        """True when this grant covers *label* (exactly or hierarchically)."""
        return self.label.is_ancestor_of(label)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Privilege):
            return NotImplemented
        return self.kind == other.kind and self.label == other.label

    def __hash__(self) -> int:
        return hash((self.kind, self.label))

    def __repr__(self) -> str:
        return f"Privilege({self.kind!r}, {self.label.uri!r})"


class PrivilegeSet:
    """An immutable collection of privileges held by a principal.

    Construction accepts a mapping of kind → iterable of labels::

        PrivilegeSet({
            "clearance": [mdt_label, region_label],
            "declassification": [mdt_label],
        })

    The paper (§4.1) notes that holding declassification over a label is
    what ultimately authorises *release*; clearance only authorises
    *reading within the system*. Both checks appear throughout the
    backend and frontend, so both have dedicated helpers here.
    """

    __slots__ = ("_grants", "_generation", "_cover_cache")

    def __init__(self, grants: Mapping[str, Iterable[Label | str]] | None = None):
        normalised: Dict[str, FrozenSet[Label]] = {kind: frozenset() for kind in PRIVILEGE_KINDS}
        for kind, labels in (grants or {}).items():
            if kind not in PRIVILEGE_KINDS:
                raise PolicyError(f"unknown privilege kind {kind!r}")
            coerced = frozenset(
                parse_label(label) if isinstance(label, str) else label for label in labels
            )
            normalised[kind] = coerced
        self._grants = normalised
        self._generation = next(_generations)
        self._cover_cache: Dict[LabelSet, bool] = {}

    @property
    def generation(self) -> int:
        """A unique id for this (immutable) grant table.

        Clearance decisions are pure functions of ``(labels, generation)``,
        so enforcement caches key on the generation and are invalidated
        by :meth:`grant`/:meth:`revoke` producing a new instance.
        """
        return self._generation

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls) -> "PrivilegeSet":
        return _EMPTY

    @classmethod
    def from_privileges(cls, privileges: Iterable[Privilege]) -> "PrivilegeSet":
        grants: Dict[str, set] = {kind: set() for kind in PRIVILEGE_KINDS}
        for privilege in privileges:
            grants[privilege.kind].add(privilege.label)
        return cls(grants)

    def merge(self, other: "PrivilegeSet") -> "PrivilegeSet":
        """The union of two privilege sets (e.g. role + user grants)."""
        grants = {
            kind: self._grants[kind] | other._grants[kind] for kind in PRIVILEGE_KINDS
        }
        return PrivilegeSet(grants)

    def restrict(self, kinds: Iterable[str]) -> "PrivilegeSet":
        """A copy retaining only the given privilege kinds.

        Used by the engine to *withhold* clearance from privileged units
        (§4.3: privileged units run unjailed but may be prevented from
        receiving certain labels).
        """
        kinds = set(kinds)
        return PrivilegeSet({kind: self._grants[kind] for kind in kinds})

    def grant(self, kind: str, *labels: Label | str) -> "PrivilegeSet":
        """A copy additionally holding *kind* over each of *labels*.

        Returns a new instance (with a fresh :attr:`generation`) so every
        memoized clearance decision derived from the old table is
        invalidated rather than mutated.
        """
        if kind not in PRIVILEGE_KINDS:
            raise PolicyError(f"unknown privilege kind {kind!r}")
        added = frozenset(
            parse_label(label) if isinstance(label, str) else label for label in labels
        )
        grants = dict(self._grants)
        grants[kind] = grants[kind] | added
        return PrivilegeSet(grants)

    def revoke(self, kind: str, *labels: Label | str) -> "PrivilegeSet":
        """A copy without the exact grants (*kind*, label) for *labels*.

        Like :meth:`grant` this produces a new generation, so stale
        cached decisions cannot outlive the revocation. Only exact grant
        labels are removed; use :meth:`without_clearance_for` to strip
        hierarchical ancestors covering a label.
        """
        if kind not in PRIVILEGE_KINDS:
            raise PolicyError(f"unknown privilege kind {kind!r}")
        removed = frozenset(
            parse_label(label) if isinstance(label, str) else label for label in labels
        )
        grants = dict(self._grants)
        grants[kind] = grants[kind] - removed
        return PrivilegeSet(grants)

    def without_clearance_for(self, labels: Iterable[Label | str]) -> "PrivilegeSet":
        """A copy whose clearance no longer covers any of *labels*.

        Hierarchical grants that would cover a withheld label are removed
        entirely — withholding must not be circumventable via an ancestor
        grant.
        """
        withheld = [
            parse_label(label) if isinstance(label, str) else label for label in labels
        ]
        kept = frozenset(
            grant
            for grant in self._grants[CLEARANCE]
            if not any(grant.is_ancestor_of(label) for label in withheld)
        )
        grants = dict(self._grants)
        grants[CLEARANCE] = kept
        return PrivilegeSet(grants)

    # -- queries -----------------------------------------------------------

    def labels_for(self, kind: str) -> FrozenSet[Label]:
        """The raw grant labels for *kind* (hierarchical roots included)."""
        if kind not in PRIVILEGE_KINDS:
            raise PolicyError(f"unknown privilege kind {kind!r}")
        return self._grants[kind]

    def grants(self, kind: str, label: Label) -> bool:
        """True when this set holds *kind* over *label* (incl. hierarchically)."""
        return any(grant.is_ancestor_of(label) for grant in self.labels_for(kind))

    def clearance_covers(self, labels: LabelSet | Iterable[Label]) -> bool:
        """True when every confidentiality label in *labels* is readable.

        Decisions are memoized per label set: the broker sees the same
        few label sets millions of times, and since this instance is
        immutable a cached decision never goes stale.
        """
        if not isinstance(labels, LabelSet):
            labels = LabelSet(labels)
        cache = self._cover_cache
        cached = cache.get(labels)
        if cached is not None:
            return cached
        decision = all(self.grants(CLEARANCE, label) for label in labels.confidentiality)
        if len(cache) >= _COVER_CACHE_LIMIT:
            cache.clear()
        cache[labels] = decision
        return decision

    def can_declassify(self, labels: LabelSet | Iterable[Label]) -> bool:
        """True when every confidentiality label in *labels* may be removed."""
        if not isinstance(labels, LabelSet):
            labels = LabelSet(labels)
        return all(
            self.grants(DECLASSIFICATION, label) for label in labels.confidentiality
        )

    def can_endorse(self, labels: LabelSet | Iterable[Label]) -> bool:
        """True when every integrity label in *labels* may be added."""
        if not isinstance(labels, LabelSet):
            labels = LabelSet(labels)
        return all(self.grants(ENDORSEMENT, label) for label in labels.integrity)

    def missing_clearance(self, labels: LabelSet | Iterable[Label]) -> FrozenSet[Label]:
        """The confidentiality labels in *labels* this set cannot read.

        Used to build precise error messages and audit records.
        """
        if not isinstance(labels, LabelSet):
            labels = LabelSet(labels)
        return frozenset(
            label for label in labels.confidentiality if not self.grants(CLEARANCE, label)
        )

    def missing_declassification(
        self, labels: LabelSet | Iterable[Label]
    ) -> FrozenSet[Label]:
        """The confidentiality labels in *labels* this set cannot remove."""
        if not isinstance(labels, LabelSet):
            labels = LabelSet(labels)
        return frozenset(
            label
            for label in labels.confidentiality
            if not self.grants(DECLASSIFICATION, label)
        )

    # -- protocol ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrivilegeSet):
            return NotImplemented
        return self._grants == other._grants

    def __hash__(self) -> int:
        return hash(tuple(sorted((kind, labels) for kind, labels in self._grants.items())))

    def __bool__(self) -> bool:
        return any(self._grants.values())

    def __repr__(self) -> str:
        parts = []
        for kind in PRIVILEGE_KINDS:
            labels = self._grants[kind]
            if labels:
                uris = ", ".join(sorted(label.uri for label in labels))
                parts.append(f"{kind}=[{uris}]")
        return f"PrivilegeSet({'; '.join(parts)})"

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, list]:
        """A JSON-serialisable representation (kind → sorted URI list)."""
        return {
            kind: sorted(label.uri for label in labels)
            for kind, labels in self._grants.items()
            if labels
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[str]]) -> "PrivilegeSet":
        return cls({kind: list(labels) for kind, labels in data.items()})


_EMPTY = PrivilegeSet()
