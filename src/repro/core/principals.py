"""Principals: the subjects that hold privileges.

The paper assigns privileges to two kinds of principal through the policy
file (§4.1): *units* in the event-processing backend and *users* whose web
requests the frontend serves. Both are modelled here; the policy module
builds them from a policy document, and enforcement code only ever looks
at ``principal.privileges``.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable, Optional

from repro.core.labels import Label, LabelSet, parse_label
from repro.core.privileges import PrivilegeSet


class Principal:
    """A named subject holding a set of privileges."""

    __slots__ = ("name", "privileges")

    def __init__(self, name: str, privileges: Optional[PrivilegeSet] = None):
        self.name = name
        self.privileges = privileges or PrivilegeSet.empty()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Principal):
            return NotImplemented
        return (
            type(self) is type(other)
            and self.name == other.name
            and self.privileges == other.privileges
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))


class UnitPrincipal(Principal):
    """An event-processing unit (backend principal).

    ``privileged`` marks units that run outside the IFC jail at the
    analogue of ``$SAFE=0`` and therefore can perform I/O — the paper's
    importer/exporter units. Such units can effectively declassify
    anything they receive, so the engine limits them by *withholding*
    clearance for the labels in ``withheld_labels`` (§4.3, last
    paragraph): matching events are simply never delivered to them.
    """

    __slots__ = ("privileged", "withheld_labels")

    def __init__(
        self,
        name: str,
        privileges: Optional[PrivilegeSet] = None,
        privileged: bool = False,
        withheld_labels: Iterable[Label | str] = (),
    ):
        super().__init__(name, privileges)
        self.privileged = privileged
        self.withheld_labels = LabelSet(withheld_labels)
        if self.withheld_labels:
            self.privileges = self.privileges.without_clearance_for(self.withheld_labels)

    def effective_clearance(self) -> PrivilegeSet:
        """The privileges used for subscription label filtering."""
        return self.privileges


class UserPrincipal(Principal):
    """A web user (frontend principal) with HTTP Basic credentials.

    Passwords are stored as salted SHA-256 digests; production would use a
    slow KDF, but the hashing scheme is orthogonal to the IFC mechanism
    under study and a fast digest keeps the benchmark's authentication
    component measurable in isolation.
    """

    __slots__ = ("password_salt", "password_digest", "mdt_id", "region")

    def __init__(
        self,
        name: str,
        privileges: Optional[PrivilegeSet] = None,
        password: Optional[str] = None,
        password_salt: Optional[str] = None,
        password_digest: Optional[str] = None,
        mdt_id: Optional[str] = None,
        region: Optional[str] = None,
    ):
        super().__init__(name, privileges)
        self.mdt_id = mdt_id
        self.region = region
        if password is not None:
            self.password_salt = password_salt or _derive_salt(name)
            self.password_digest = _digest(self.password_salt, password)
        else:
            self.password_salt = password_salt or ""
            self.password_digest = password_digest or ""

    def check_password(self, candidate: str) -> bool:
        """Constant-time comparison of a candidate password.

        Understands both digest formats in use: the policy file's plain
        salted SHA-256 and the web database's self-describing
        ``pbkdf2$<iterations>$<hex>``.
        """
        if not self.password_digest:
            return False
        expected = self.password_digest
        if expected.startswith("pbkdf2$"):
            try:
                _scheme, iterations_text, _hex = expected.split("$", 2)
                iterations = int(iterations_text)
            except ValueError:
                return False
            derived = hashlib.pbkdf2_hmac(
                "sha256", candidate.encode(), self.password_salt.encode(), iterations
            )
            return hmac.compare_digest(expected, f"pbkdf2${iterations}${derived.hex()}")
        actual = _digest(self.password_salt, candidate)
        return hmac.compare_digest(expected, actual)

    def readable_labels(self) -> LabelSet:
        """The confidentiality labels this user is cleared for (grant roots)."""
        return LabelSet(self.privileges.labels_for("clearance"))


def _derive_salt(name: str) -> str:
    return hashlib.sha256(f"safeweb-salt:{name}".encode()).hexdigest()[:16]


def _digest(salt: str, password: str) -> str:
    return hashlib.sha256(f"{salt}:{password}".encode()).hexdigest()


def coerce_label(value: Label | str) -> Label:
    """Shared helper: accept a :class:`Label` or its URI form."""
    if isinstance(value, Label):
        return value
    return parse_label(value)
