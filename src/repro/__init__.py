"""SafeWeb reproduction: an IFC middleware for securing web applications.

A from-scratch Python reproduction of Hosek et al., "SafeWeb: A
Middleware for Securing Ruby-Based Web Applications" (Middleware 2011).

Public surface by tier:

* :mod:`repro.core` — labels, privileges, policy, audit;
* :mod:`repro.events` — the event-processing backend (broker, jail,
  engine, STOMP);
* :mod:`repro.taint` — variable-level taint tracking;
* :mod:`repro.storage` — document store, replication, web database;
* :mod:`repro.web` — the web frontend and SafeWeb middleware;
* :mod:`repro.mdt` — the MDT web portal case study;
* :mod:`repro.bench` — the evaluation harness.

The most commonly used names are re-exported here.
"""

from repro.core.labels import Label, LabelSet, conf_label, int_label, parse_label
from repro.core.privileges import PrivilegeSet
from repro.core.policy import Policy, parse_policy
from repro.core.audit import AuditLog
from repro.events import Broker, Event, EventProcessingEngine, Unit
from repro.taint import LabeledStr, label, labels_of, mark_user_input
from repro.web import SafeWebApp, SafeWebMiddleware

__version__ = "1.0.0"

__all__ = [
    "Label",
    "LabelSet",
    "conf_label",
    "int_label",
    "parse_label",
    "PrivilegeSet",
    "Policy",
    "parse_policy",
    "AuditLog",
    "Broker",
    "Event",
    "EventProcessingEngine",
    "Unit",
    "LabeledStr",
    "label",
    "labels_of",
    "mark_user_input",
    "SafeWebApp",
    "SafeWebMiddleware",
    "__version__",
]
