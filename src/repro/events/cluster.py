"""Multi-process cluster engine: topic-sharded brokers + pinned workers.

PR 5's laned engine tops out at GIL parity on CPU-bound pipelines; this
module moves past it with *process*-level parallelism over the existing
STOMP fabric (docs/CLUSTER.md has the full contract):

* **Broker shards** — N broker processes, each an ordinary
  ``Broker(threaded=True)`` behind a :class:`StompServer`. The topic
  space is partitioned across them by a consistent-hash ring
  (:class:`~repro.events.ring.HashRing`): an exact topic lives on
  exactly one shard; wildcard subscriptions register on every shard and
  rely on each *publish* hashing to one shard to avoid duplicates.
* **Worker processes** — each runs a local synchronous
  :class:`~repro.events.engine.EventProcessingEngine` whose broker is a
  :class:`ClusterRouter`; units are pinned to workers by the parent's
  placement ring. Unit callbacks run under the same LabelContext / jail
  / supervision ladder as in-process.
* **The codec is the IPC format** — events cross process boundaries as
  ``encode_document`` bodies (:mod:`repro.events.cluster_codec`): value
  labels ride the sidecar, the event-level label set rides the
  ``x-safeweb-labels`` header, and the *receiving shard's* broker checks
  clearance against its own policy copy exactly as in-process — a
  compromised worker cannot claim clearance it does not have.
* **At-least-once → DLQ** — worker deliveries use STOMP ``ack: client``:
  the worker acks only after the unit callback finished *and* its
  cascade publishes were receipt-confirmed. A worker that dies mid-event
  leaves the delivery unacked; the shard dead-letters it to
  ``/_dlq.<unit>`` under the original labels. The parent detects the
  dead process and re-places its units on a surviving worker. Events are
  observed, dead-lettered or audited-denied — never lost.

The single-process synchronous engine remains the executable reference;
``tests/property/test_cluster_engine.py`` pins the cluster's stores,
labels and audit-decision multisets against it.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.audit import AuditLog, default_audit_log
from repro.core.labels import Label, LabelSet
from repro.core.policy import Policy, PolicyDocument, UnitSpec
from repro.events.cluster_codec import decode_event, encode_event, encode_payload
from repro.events.event import Event
from repro.events.ring import HashRing
from repro.events.stomp.bridge import StompBrokerBridge
from repro.events.supervision import SupervisionPolicy, is_dlq_topic
from repro.exceptions import SafeWebError, SecurityViolation, StompProtocolError

#: Infra logins every shard policy accepts beside the real units: the
#: parent's ingress publishers and the cluster's own control principal.
INGRESS_LOGINS = ("external", "scheduler", "_cluster")

#: Prefix of the per-unit supervisor login (worker-side DLQ publishes).
SUPERVISOR_PREFIX = "supervisor:"


def shard_policy_document(document: PolicyDocument) -> PolicyDocument:
    """The policy a broker shard authenticates against.

    Clone of the deployment policy plus clearance-free specs for the
    infra logins (ingress publishers, per-unit supervisors). Publishing
    never requires clearance, and none of these logins subscribe, so an
    empty grant set is fail-safe — while real units keep their exact
    grants, which is what makes the shard's delivery-time clearance
    check identical to the in-process broker's.
    """
    clone = PolicyDocument.from_json(document.to_json())
    for login in INGRESS_LOGINS:
        clone.units.setdefault(login, UnitSpec(name=login))
    for name in list(clone.units):
        supervisor_login = SUPERVISOR_PREFIX + name
        clone.units.setdefault(supervisor_login, UnitSpec(name=supervisor_login))
    return clone


def _is_wildcard(topic: str) -> bool:
    return "*" in topic or "#" in topic


def cluster_context(start_method: Optional[str] = None):
    """The multiprocessing context cluster children start under.

    ``fork`` is deliberately not the default: the parent already runs
    threads by the time a cluster starts (broker dispatcher, WAL flush,
    the deployment's audit flusher), and forking a threaded parent can
    hand children locks frozen mid-acquisition. ``forkserver`` forks
    from a clean single-threaded helper where available (POSIX);
    ``spawn`` is the portable fallback (and the only method on
    Windows). Both are safe here because the child mains import their
    dependencies themselves and every shipped object pickles.
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    available = multiprocessing.get_all_start_methods()
    for method in ("forkserver", "spawn"):
        if method in available:
            return multiprocessing.get_context(method)
    return multiprocessing.get_context()


class _RouterSubscription:
    """The Broker-surface subscription handle the engine keeps."""

    __slots__ = ("subscription_id", "topic", "principal", "entries", "active")

    def __init__(self, subscription_id: str, topic: str, principal: str, entries):
        self.subscription_id = subscription_id
        self.topic = topic
        self.principal = principal
        #: [(bridge, bridge-subscription-id)] — one per shard involved.
        self.entries = entries
        self.active = True


class ClusterRouter:
    """The federation gateway's export/import machinery, generalised.

    A Broker-compatible facade that routes publishes to the shard owning
    the topic and fans subscriptions out to the shards that can match
    them. One STOMP connection per (role, principal, shard): *publish*
    and *subscribe* connections are deliberately separate so that a
    delivery callback can block on publish-receipt confirmation without
    deadlocking its own listener thread.

    Deliveries arrive as codec bodies and are decoded back into labeled
    events (:func:`~repro.events.cluster_codec.decode_event`); a body
    whose recorded labels disagree with the transport header the shard's
    clearance check enforced is audited-denied and consumed, never
    delivered. Per-principal delivery locks serialise a unit's callbacks
    across its subscriptions — the same guarantee the laned engine's
    per-unit mailboxes make.
    """

    def __init__(
        self,
        shards: Dict[str, Tuple[str, int]],
        audit: Optional[AuditLog] = None,
        ring: Optional[HashRing] = None,
        ack_timeout: float = 10.0,
    ):
        if not shards:
            raise SafeWebError("cluster router needs at least one shard")
        self._shards = dict(shards)
        self._ring = ring if ring is not None else HashRing(sorted(shards))
        self._audit = audit if audit is not None else default_audit_log()
        self._ack_timeout = ack_timeout
        self._bridges: Dict[Tuple[str, str, str], StompBrokerBridge] = {}
        self._bridge_lock = threading.RLock()
        self._unit_locks: Dict[str, threading.Lock] = {}
        self._subscriptions: Dict[str, _RouterSubscription] = {}
        self._ids = itertools.count(1)
        #: Worker-side tee of DLQ-topic publishes (clearance-free
        #: accounting; the DLQ events themselves still flow through the
        #: label-checked broker like any other event).
        self.dlq_ledger: List[dict] = []
        self._dlq_lock = threading.Lock()
        self.closed = False

    # -- topology -------------------------------------------------------------

    @property
    def shard_names(self) -> List[str]:
        return sorted(self._shards)

    def shard_for(self, topic: str) -> str:
        """The shard owning *topic* (exact topics only)."""
        return self._ring.node_for(topic)

    def _shards_for_subscription(self, topic: str) -> List[str]:
        if _is_wildcard(topic):
            # A pattern cannot be hashed; register everywhere. Publishes
            # hash to one shard, so matching stays exactly-once.
            return self.shard_names
        if is_dlq_topic(topic):
            # Dead letters are published on the shard that *produced*
            # them (an unacked in-flight delivery or an orphan tombstone
            # dead-letters on its own local broker), which is not
            # necessarily ring.node_for(topic). Register everywhere:
            # router-side DLQ publishes still hash to one shard, and a
            # shard-local publish matches only on that shard, so no path
            # duplicates.
            return self.shard_names
        return [self._ring.node_for(topic)]

    def _bridge(self, role: str, login: str, shard: str) -> StompBrokerBridge:
        key = (role, login, shard)
        with self._bridge_lock:
            bridge = self._bridges.get(key)
            if bridge is None:
                host, port = self._shards[shard]
                bridge = StompBrokerBridge(host, port, login=login, audit=self._audit)
                bridge.connect()
                self._bridges[key] = bridge
            return bridge

    def warm_publisher(self, login: str) -> None:
        """Open *login*'s publish links to every shard now.

        Publishes are jail-safe (queue appends), but the lazy first
        connect is not — callers whose publishes can originate inside a
        jailed callback must warm the links from trusted code first.
        """
        for shard in self.shard_names:
            self._bridge("pub", login, shard)

    def _unit_lock(self, principal: str) -> threading.Lock:
        with self._bridge_lock:
            lock = self._unit_locks.get(principal)
            if lock is None:
                lock = self._unit_locks[principal] = threading.Lock()
            return lock

    # -- the Broker surface ----------------------------------------------------

    def publish(self, event: Event, publisher: str = "anonymous") -> int:
        self._tee_dlq(event, publisher)
        shard = self._ring.node_for(event.topic)
        self._bridge("pub", publisher, shard).publish(self._transport(event))
        return 0

    def publish_many(self, events, publisher: str = "anonymous") -> int:
        """Batched cross-shard publish: one receipt-confirmed run per shard."""
        by_shard: Dict[str, List[Event]] = {}
        for event in events:
            self._tee_dlq(event, publisher)
            by_shard.setdefault(self._ring.node_for(event.topic), []).append(
                self._transport(event)
            )
        for shard, batch in by_shard.items():
            self._bridge("pub", publisher, shard).publish_many(batch)
        return 0

    def subscribe(
        self,
        topic: str,
        callback: Callable[[Event], None],
        principal: str = "anonymous",
        clearance=None,  # resolved by the shard's policy, never trusted
        selector=None,
        subscription_id: Optional[str] = None,
        require_integrity: Optional[LabelSet] = None,
    ) -> _RouterSubscription:
        # Pre-warm this principal's publish links to every shard NOW,
        # while we are outside the jail: a cascade publish from inside
        # the unit's callback may target any shard, and the jail denies
        # the socket connect a lazy first use would need.
        for shard in self.shard_names:
            self._bridge("pub", principal, shard)
        entries = []
        for shard in self._shards_for_subscription(topic):
            bridge = self._bridge("sub", principal, shard)
            bridge_sub = bridge.subscribe(
                topic,
                # The ack must go back on the link that delivered the
                # message — for multi-shard subscriptions (wildcards,
                # DLQ topics) that is not ring.node_for(topic), so the
                # wrapper binds the delivering bridge itself.
                self._deliver_wrapper(callback, principal, bridge),
                principal=principal,
                selector=selector,
                require_integrity=require_integrity,
                ack="client",
            )
            entries.append((bridge, bridge_sub.subscription_id))
        router_id = subscription_id or f"cluster-sub-{next(self._ids)}"
        subscription = _RouterSubscription(router_id, topic, principal, entries)
        self._subscriptions[router_id] = subscription
        return subscription

    def unsubscribe(self, subscription_id: str) -> None:
        subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is None:
            return
        subscription.active = False
        for bridge, bridge_sub_id in subscription.entries:
            bridge.unsubscribe(bridge_sub_id)

    def subscriptions_for(self, principal: str) -> List[_RouterSubscription]:
        return [
            subscription
            for subscription in self._subscriptions.values()
            if subscription.principal == principal
        ]

    def drain(self, timeout: float = 5.0) -> None:
        """Flush every publish connection (receipt-confirmed)."""
        for (role, _login, _shard), bridge in list(self._bridges.items()):
            if role == "pub":
                bridge.drain(timeout)

    def __len__(self) -> int:
        return len(self._subscriptions)

    # -- delivery --------------------------------------------------------------

    def _deliver_wrapper(self, callback, principal: str, bridge: StompBrokerBridge):
        unit_lock = self._unit_lock(principal)

        def deliver(transport: Event, message_id: str = "") -> None:
            try:
                event = decode_event(
                    transport.payload or "", transport_labels=transport.labels
                )
                if event.topic != transport.topic:
                    # A shard re-wrapped the event (its DLQ path): the
                    # transport carries the real topic and the dlq_*
                    # metadata; the body restores the original payload
                    # (value labels included).
                    event = Event(
                        transport.topic,
                        transport.attributes,
                        event.payload,
                        transport.labels,
                        timestamp=transport.timestamp,
                    )
            except SecurityViolation as violation:
                self._audit.denied(
                    "cluster",
                    "decode",
                    principal,
                    labels=transport.labels,
                    detail=f"{transport.topic}: {violation}",
                )
                bridge.ack(message_id)
                return
            except StompProtocolError:
                # Not a cluster body — a foreign STOMP publisher on the
                # same fabric. Deliver the transport event as-is.
                event = transport
            try:
                with unit_lock:
                    callback(event)
            except Exception as error:  # noqa: BLE001 - NACK, never lose
                self._audit.denied(
                    "cluster",
                    "callback",
                    principal,
                    labels=event.labels,
                    detail=f"{event.topic}: {error!r}",
                )
                bridge.nack(message_id)
                return
            # Cascade durability before the ack: everything the callback
            # published must be receipt-confirmed at its shard before
            # this delivery is acknowledged — a crash in the gap yields
            # a duplicate (at-least-once), never a gap.
            self.drain(self._ack_timeout)
            bridge.ack(message_id)

        return deliver

    def _transport(self, event: Event) -> Event:
        """The on-the-wire form: codec body, attribute headers, label header."""
        return Event(
            event.topic,
            event.attributes,
            encode_event(event),
            event.labels,
            timestamp=event.timestamp,
        )

    def _tee_dlq(self, event: Event, publisher: str) -> None:
        if not is_dlq_topic(event.topic):
            return
        with self._dlq_lock:
            self.dlq_ledger.append(
                {
                    "topic": event.topic,
                    "publisher": publisher,
                    "unit": event.attributes.get("dlq_unit", ""),
                    "reason": event.attributes.get("dlq_reason", ""),
                    "labels": event.labels.to_uris(),
                }
            )

    # -- health ----------------------------------------------------------------

    def probe(self) -> dict:
        """Liveness + counters for every link, keyed ``role:login:shard``."""
        bridges = {}
        published = delivered = errors = dead_lettered = 0
        with self._bridge_lock:
            items = list(self._bridges.items())
        for (role, login, shard), bridge in items:
            report = bridge.probe()
            bridges[f"{role}:{login}:{shard}"] = report
            published += report["published"]
            delivered += report["delivered"]
            errors += report["errors"]
            dead_lettered += report["dead_lettered"]
        return {
            "healthy": all(report["connected"] for report in bridges.values())
            if bridges
            else True,
            "shards": self.shard_names,
            "bridges": bridges,
            "published": published,
            "delivered": delivered,
            "errors": errors,
            "dead_lettered": dead_lettered,
            "dlq_ledger": len(self.dlq_ledger),
        }

    def ensure_connected(self) -> bool:
        """Reconnect any down link; True when all links are healthy after."""
        healthy = True
        with self._bridge_lock:
            bridges = list(self._bridges.values())
        for bridge in bridges:
            healthy = bridge.ensure_connected() and healthy
        return healthy

    def activity(self) -> int:
        """Monotonic work counter for the drain stability check."""
        total = 0
        with self._bridge_lock:
            bridges = list(self._bridges.values())
        for bridge in bridges:
            total += bridge.stats.published + bridge.stats.delivered
        return total

    def queues_empty(self) -> bool:
        with self._bridge_lock:
            bridges = list(self._bridges.values())
        return all(bridge.probe()["outgoing_depth"] == 0 for bridge in bridges)

    def close(self) -> None:
        self.closed = True
        with self._bridge_lock:
            bridges = list(self._bridges.values())
            self._bridges.clear()
        for bridge in bridges:
            try:
                bridge.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass


# -- child process mains -------------------------------------------------------
#
# Top-level functions so they pickle by reference under both fork and
# spawn start methods. Control speaks over a multiprocessing Pipe:
# {"op": ...} in, {"ok": ...} out, one request in flight per child.


def _broker_shard_main(conn, policy_json: str, shard_name: str, supervision) -> None:
    from repro.events.broker import Broker
    from repro.events.stomp.server import StompServer

    audit = AuditLog()
    policy = Policy(PolicyDocument.from_json(policy_json))
    broker = Broker(threaded=True, audit=audit)
    server = StompServer(broker, policy=policy, audit=audit, supervision=supervision)
    server.start()
    conn.send({"ok": True, "address": server.address})
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message.get("op")
            try:
                if op == "ping":
                    conn.send({"ok": True, "shard": shard_name})
                elif op == "drain":
                    broker.drain(message.get("timeout", 5.0))
                    conn.send({"ok": True, "activity": audit.total_decisions()})
                elif op == "audit":
                    conn.send(
                        {
                            "ok": True,
                            "records": [
                                (
                                    record.component,
                                    record.operation,
                                    record.principal,
                                    record.decision,
                                    tuple(record.labels.to_uris()),
                                )
                                for record in audit.records()
                            ],
                        }
                    )
                elif op == "dead_letters":
                    conn.send({"ok": True, "dead_letters": list(server.dead_letters)})
                elif op == "stop":
                    conn.send({"ok": True})
                    break
                else:
                    conn.send({"ok": False, "error": f"unknown op {op!r}"})
            except Exception as error:  # noqa: BLE001 - report, keep serving
                conn.send({"ok": False, "error": repr(error)})
    finally:
        server.stop()
        broker.stop()


def _worker_main(
    conn,
    policy_json: str,
    shard_addresses: Dict[str, Tuple[str, int]],
    worker_name: str,
    options: dict,
) -> None:
    from repro.events.engine import EventProcessingEngine

    audit = AuditLog()
    policy = Policy(PolicyDocument.from_json(policy_json))
    router = ClusterRouter(shard_addresses, audit=audit)
    engine = EventProcessingEngine(
        broker=router,
        policy=policy,
        audit=audit,
        isolation=options.get("isolation", True),
        supervision=options.get("supervision"),
    )
    conn.send({"ok": True, "worker": worker_name})

    def activity() -> int:
        return engine.stats.dispatched + engine.stats.queued + router.activity()

    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message.get("op")
            try:
                if op == "ping":
                    conn.send({"ok": True, "worker": worker_name})
                elif op == "place":
                    unit = pickle.loads(message["factory"])()
                    engine.register(unit)
                    conn.send({"ok": True, "unit": unit.name})
                elif op == "unplace":
                    engine.unregister(message["unit"])
                    conn.send({"ok": True})
                elif op == "drain":
                    engine.drain(message.get("timeout", 10.0))
                    router.drain()
                    conn.send(
                        {
                            "ok": True,
                            "activity": activity(),
                            "idle": router.queues_empty(),
                        }
                    )
                elif op == "stores":
                    dumps = {}
                    for name in engine.unit_names:
                        store = engine.store_of(name)
                        dumps[name] = {
                            key: [store.get(key), list(store.labels_for(key).to_uris())]
                            for key in store.keys()
                        }
                    conn.send({"ok": True, "stores": encode_payload(dumps)})
                elif op == "audit":
                    conn.send(
                        {
                            "ok": True,
                            "records": [
                                (
                                    record.component,
                                    record.operation,
                                    record.principal,
                                    record.decision,
                                    tuple(record.labels.to_uris()),
                                )
                                for record in audit.records()
                            ],
                        }
                    )
                elif op == "stats":
                    conn.send(
                        {
                            "ok": True,
                            "stats": {
                                "dispatched": engine.stats.dispatched,
                                "callback_errors": engine.stats.callback_errors,
                                "dead_lettered": engine.stats.dead_lettered,
                                "retries": engine.stats.retries,
                                "restarts": engine.stats.restarts,
                            },
                            "units": engine.unit_names,
                        }
                    )
                elif op == "dead_letters":
                    conn.send({"ok": True, "dead_letters": list(router.dlq_ledger)})
                elif op == "probe":
                    conn.send({"ok": True, "probe": router.probe()})
                elif op == "stop":
                    conn.send({"ok": True})
                    break
                else:
                    conn.send({"ok": False, "error": f"unknown op {op!r}"})
            except Exception as error:  # noqa: BLE001 - report, keep serving
                conn.send({"ok": False, "error": repr(error)})
    finally:
        router.close()


# -- parent-side handles -------------------------------------------------------


class _ChildHandle:
    """One shard or worker process plus its control pipe."""

    __slots__ = ("name", "process", "conn", "lock", "alive", "address")

    def __init__(self, name, process, conn):
        self.name = name
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.alive = True
        self.address: Optional[Tuple[str, int]] = None

    def call(self, message: dict, timeout: float = 30.0) -> dict:
        with self.lock:
            self.conn.send(message)
            if not self.conn.poll(timeout):
                raise SafeWebError(
                    f"{self.name}: control timeout waiting for {message.get('op')!r}"
                )
            reply = self.conn.recv()
        if not reply.get("ok"):
            raise SafeWebError(f"{self.name}: {reply.get('error', 'control error')}")
        return reply


class _Placement:
    __slots__ = ("unit_name", "factory_bytes", "worker")

    def __init__(self, unit_name: str, factory_bytes: bytes, worker: str):
        self.unit_name = unit_name
        self.factory_bytes = factory_bytes
        self.worker = worker


class ClusterEngine:
    """Parent-side orchestrator: shard + worker processes, placement,
    drain, supervision across the process boundary.

    The engine-compatible surface (``publish`` / ``publish_batch`` /
    ``drain`` / ``store_of`` …) lets :class:`MdtDeployment` treat a
    cluster like the in-process engine for the pipeline stages it
    offloads. Unit *factories* (not instances) are placed, so restart
    after a worker death re-creates the unit from scratch on a survivor
    — exactly the one-for-one restart contract, one level up.
    """

    def __init__(
        self,
        policy: Policy | PolicyDocument,
        workers: int = 2,
        shards: Optional[int] = None,
        audit: Optional[AuditLog] = None,
        supervision: Optional[SupervisionPolicy] = None,
        isolation: bool = True,
        monitor_interval: float = 0.2,
        auto_restart: bool = True,
        host: str = "127.0.0.1",
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise SafeWebError("cluster needs at least one worker")
        document = policy.document if isinstance(policy, Policy) else policy
        self.document = document
        self.audit = audit if audit is not None else default_audit_log()
        self.supervision = supervision
        self.isolation = isolation
        self._worker_count = workers
        self._shard_count = shards if shards else max(1, min(workers, 2))
        self._monitor_interval = monitor_interval
        self._auto_restart = auto_restart
        self._host = host
        self._ctx = cluster_context(start_method)
        self._shards: Dict[str, _ChildHandle] = {}
        self._workers: Dict[str, _ChildHandle] = {}
        self._placements: Dict[str, _Placement] = {}
        self._worker_ring: Optional[HashRing] = None
        self.router: Optional[ClusterRouter] = None
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.RLock()
        self.started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ClusterEngine":
        if self.started:
            return self
        shard_json = shard_policy_document(self.document).to_json()
        worker_json = self.document.to_json()
        for index in range(self._shard_count):
            name = f"shard-{index}"
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_broker_shard_main,
                args=(child_conn, shard_json, name, self.supervision),
                name=f"safeweb-{name}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            handle = _ChildHandle(name, process, parent_conn)
            if not parent_conn.poll(30):
                raise SafeWebError(f"{name} failed to report its address")
            hello = parent_conn.recv()
            handle.address = tuple(hello["address"])
            self._shards[name] = handle
        addresses = {name: handle.address for name, handle in self._shards.items()}
        options = {"isolation": self.isolation, "supervision": self.supervision}
        for index in range(self._worker_count):
            name = f"worker-{index}"
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, worker_json, addresses, name, options),
                name=f"safeweb-{name}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            handle = _ChildHandle(name, process, parent_conn)
            if not parent_conn.poll(30):
                raise SafeWebError(f"{name} failed to start")
            parent_conn.recv()
            self._workers[name] = handle
        self._worker_ring = HashRing(sorted(self._workers))
        self.router = ClusterRouter(addresses, audit=self.audit)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="safeweb-cluster-monitor", daemon=True
        )
        self._monitor.start()
        self.started = True
        self.audit.allowed(
            "cluster",
            "start",
            "_cluster",
            detail=f"{self._shard_count} shard(s), {self._worker_count} worker(s)",
        )
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if not self.started:
            return
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout)
        if self.router is not None:
            self.router.close()
        for handle in list(self._workers.values()):
            self._stop_child(handle, timeout)
        for handle in list(self._shards.values()):
            self._stop_child(handle, timeout)
        self.started = False

    def _stop_child(self, handle: _ChildHandle, timeout: float) -> None:
        if handle.alive and handle.process.is_alive():
            try:
                handle.call({"op": "stop"}, timeout=timeout)
            except Exception:  # noqa: BLE001 - escalate to terminate below
                pass
        handle.process.join(timeout)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout)
        handle.alive = False

    def __enter__(self) -> "ClusterEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- placement -------------------------------------------------------------

    def place(self, factory: Callable[[], object], unit_name: str) -> str:
        """Pin the unit *factory* builds to a worker; returns the worker.

        *factory* must be picklable (a module-level callable, class, or
        ``functools.partial`` of one) — it is shipped to the worker and
        kept by the parent so the unit can be rebuilt on a survivor if
        its worker dies.
        """
        self._require_started()
        factory_bytes = pickle.dumps(factory)
        with self._lock:
            if unit_name in self._placements:
                raise SafeWebError(f"unit {unit_name!r} already placed")
            worker = self._pick_worker(unit_name)
            worker.call({"op": "place", "factory": factory_bytes})
            self._placements[unit_name] = _Placement(
                unit_name, factory_bytes, worker.name
            )
            self.audit.allowed(
                "cluster", "place", unit_name, detail=f"pinned to {worker.name}"
            )
            return worker.name

    def unplace(self, unit_name: str) -> None:
        with self._lock:
            placement = self._placements.pop(unit_name, None)
            if placement is None:
                return
            worker = self._workers.get(placement.worker)
        if worker is not None and worker.alive:
            worker.call({"op": "unplace", "unit": unit_name})

    def placements(self) -> Dict[str, str]:
        with self._lock:
            return {name: p.worker for name, p in self._placements.items()}

    def _pick_worker(self, unit_name: str) -> _ChildHandle:
        for candidate in self._worker_ring.preference(
            unit_name, count=len(self._workers)
        ):
            handle = self._workers[candidate]
            if handle.alive and handle.process.is_alive():
                return handle
        raise SafeWebError("no live worker to place on")

    # -- ingress / egress ------------------------------------------------------

    def publish(
        self,
        topic: str,
        attributes: Optional[dict] = None,
        payload: Optional[str] = None,
        labels: LabelSet | tuple | list = (),
        publisher: str = "external",
    ) -> Event:
        """Inject an externally produced, pre-labelled event."""
        self._require_started()
        event = Event(topic, attributes, payload, labels)
        self.router.publish(event, publisher=publisher)
        return event

    def publish_batch(self, events, publisher: str = "external") -> List[Event]:
        self._require_started()
        batch = [
            event
            if isinstance(event, Event)
            else Event(
                event["topic"],
                event.get("attributes"),
                event.get("payload"),
                event.get("labels", ()),
            )
            for event in events
        ]
        self.router.publish_many(batch, publisher=publisher)
        return batch

    def subscribe(
        self,
        topic: str,
        callback: Callable[[Event], None],
        principal: str,
        selector=None,
        require_integrity: Optional[LabelSet] = None,
    ) -> _RouterSubscription:
        """A parent-side subscription (egress tap); clearance is the
        *principal*'s, resolved by the shard — the deployment subscribes
        as its storage unit to pull results back into the local engine."""
        self._require_started()
        return self.router.subscribe(
            topic,
            callback,
            principal=principal,
            selector=selector,
            require_integrity=require_integrity,
        )

    # -- quiescence ------------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """Cross-process stability: two identical consecutive rounds.

        One round flushes the parent's publish links, asks every live
        worker to drain (engine + its publish links) and every shard to
        drain its broker queue, then snapshots the global activity
        counters. Quiescence is two consecutive rounds with identical
        counters and empty queues — an event in flight between processes
        lands in some counter by the next round.
        """
        self._require_started()
        deadline = time.monotonic() + timeout
        previous = None
        while time.monotonic() < deadline:
            self.router.drain(max(deadline - time.monotonic(), 0.1))
            snapshot: List[object] = [self.router.activity()]
            idle = self.router.queues_empty()
            for handle in self._live_workers():
                try:
                    reply = handle.call(
                        {"op": "drain", "timeout": 5.0},
                        timeout=max(deadline - time.monotonic(), 1.0),
                    )
                except SafeWebError:
                    continue  # a dying worker; the monitor will catch it
                snapshot.append((handle.name, reply["activity"]))
                idle = idle and reply.get("idle", True)
            for handle in self._shards.values():
                reply = handle.call(
                    {"op": "drain", "timeout": 5.0},
                    timeout=max(deadline - time.monotonic(), 1.0),
                )
                snapshot.append((handle.name, reply["activity"]))
            stable = tuple(snapshot)
            if idle and stable == previous:
                return True
            previous = stable
            time.sleep(0.02)
        return False

    def _live_workers(self) -> List[_ChildHandle]:
        return [
            handle
            for handle in self._workers.values()
            if handle.alive and handle.process.is_alive()
        ]

    # -- observation -----------------------------------------------------------

    def collect_stores(self) -> Dict[str, Dict[str, list]]:
        """Merged ``{unit: {key: [value, label-uris]}}`` across workers.

        Shipped through the codec (labels survive); tuples inside stored
        values come back as lists, exactly as they would from the
        document store — compare against a reference normalised the same
        way.
        """
        from repro.events.cluster_codec import decode_payload

        merged: Dict[str, Dict[str, list]] = {}
        for handle in self._live_workers():
            merged.update(decode_payload(handle.call({"op": "stores"})["stores"]))
        return merged

    def collect_audit(self, include_infra: bool = False) -> List[tuple]:
        """Every enforcement decision, cluster-wide, as comparable tuples.

        ``include_infra=False`` drops the decisions that only exist
        because of the process split (STOMP session management, bridge
        link maintenance, cluster placement) leaving the multiset the
        property suite compares against the in-process reference.
        """
        infra = {"stomp", "bridge", "cluster"}
        records: List[tuple] = [
            (
                record.component,
                record.operation,
                record.principal,
                record.decision,
                tuple(record.labels.to_uris()),
            )
            for record in self.audit.records()
        ]
        for handle in self._live_workers():
            records.extend(tuple(item) for item in handle.call({"op": "audit"})["records"])
        for handle in self._shards.values():
            records.extend(tuple(item) for item in handle.call({"op": "audit"})["records"])
        if include_infra:
            return records
        return [record for record in records if record[0] not in infra]

    def dead_letters(self) -> Dict[str, list]:
        """Every dead-letter ledger in the cluster."""
        report: Dict[str, list] = {"parent": list(self.router.dlq_ledger)}
        for handle in self._live_workers():
            report[handle.name] = handle.call({"op": "dead_letters"})["dead_letters"]
        for handle in self._shards.values():
            report[handle.name] = handle.call({"op": "dead_letters"})["dead_letters"]
        return report

    def stats(self) -> Dict[str, dict]:
        report = {}
        for handle in self._live_workers():
            reply = handle.call({"op": "stats"})
            report[handle.name] = dict(reply["stats"], units=reply["units"])
        return report

    def probe(self) -> dict:
        """Cluster health: process liveness + parent link health."""
        workers = {
            name: handle.alive and handle.process.is_alive()
            for name, handle in self._workers.items()
        }
        shards = {
            name: handle.process.is_alive() for name, handle in self._shards.items()
        }
        router = self.router.probe() if self.router is not None else {"healthy": False}
        return {
            "healthy": all(shards.values()) and any(workers.values()) and router["healthy"],
            "workers": workers,
            "shards": shards,
            "placements": self.placements(),
            "router": router,
        }

    # -- supervision across the process boundary -------------------------------

    def kill_worker(self, name: str) -> None:
        """Hard-kill a worker (chaos harness; SIGKILL, no cleanup)."""
        self._workers[name].process.kill()

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self._monitor_interval):
            for handle in list(self._workers.values()):
                if handle.alive and not handle.process.is_alive():
                    self._handle_worker_death(handle)

    def _handle_worker_death(self, handle: _ChildHandle) -> None:
        handle.alive = False
        self.audit.denied(
            "cluster",
            "worker",
            handle.name,
            detail=f"worker process died (exit {handle.process.exitcode})",
        )
        if not self._auto_restart:
            return
        with self._lock:
            orphans = [
                placement
                for placement in self._placements.values()
                if placement.worker == handle.name
            ]
            for placement in orphans:
                try:
                    target = self._pick_worker(placement.unit_name)
                except SafeWebError:
                    self.audit.denied(
                        "cluster",
                        "restart_unit",
                        placement.unit_name,
                        detail="no live worker left",
                    )
                    continue
                try:
                    target.call({"op": "place", "factory": placement.factory_bytes})
                except Exception as error:  # noqa: BLE001 - audited, next death retries
                    self.audit.denied(
                        "cluster",
                        "restart_unit",
                        placement.unit_name,
                        detail=f"re-place on {target.name} failed: {error!r}",
                    )
                    continue
                placement.worker = target.name
                self.audit.allowed(
                    "cluster",
                    "restart_unit",
                    placement.unit_name,
                    detail=f"{handle.name} -> {target.name}",
                )

    def _require_started(self) -> None:
        if not self.started:
            raise SafeWebError("cluster engine is not started; call start() first")
