"""The IFC jail: isolation of unit callbacks (paper §4.3, Figure 2).

Ruby's ``$SAFE=4`` gives SafeWeb three guarantees inside a callback
thread: no I/O, no writes to shared objects, and (with Rubinius
meta-programming) no access to variables of enclosing scopes. CPython has
no safe levels, so the jail rebuilds the same observable contract from
two mechanisms:

1. **I/O denial** — a process-wide :func:`sys.addaudithook` hook examines
   every auditable operation (``open``, ``socket.connect``,
   ``subprocess.Popen``, ``import``, …) and raises
   :class:`~repro.exceptions.IsolationError` when the *current thread* is
   inside a contained region. Restricted builtins additionally replace
   ``open``/``exec``/``eval``/``print``/``__import__`` with stubs that
   raise immediately, giving clear errors for the common cases.

2. **Scope isolation** — :func:`isolate_callback` clones the callback
   with a *copied* globals dictionary and *deep-copied* closure cells
   (and, for bound methods, a deep-copied receiver), the analogue of the
   paper's "duplicate these variables when the callback is registered".
   Writes made by the callback land in the copies and can never be
   observed by other units or later invocations.

Residual gap (documented in DESIGN.md): Python cannot stop a callback
from mutating attributes of objects *reachable* through shared modules
the way Ruby's taint-write rule does. Under the paper's threat model —
buggy, not malicious, code — the paths that matter (I/O, globals,
closures, shared unit state) are all closed.

Containment is a per-thread counter, which is what lets the parallel
engine carry the jail **per task**: a worker enters
:meth:`Jail.contained` around each non-privileged principal's callback
and leaves it afterwards, so the same pool thread can run a jailed
task, then a privileged one, with no state carried over (see
docs/ENGINE.md).
"""

from __future__ import annotations

import builtins
import copy
import sys
import threading
import types
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Optional, Tuple

from repro.exceptions import IsolationError

#: Audit-event prefixes denied inside a contained region. Matching is by
#: ``str.startswith`` against the fully qualified audit event name.
DEFAULT_DENIED_PREFIXES: Tuple[str, ...] = (
    "open",
    "import",
    "exec",
    "compile",
    "os.",
    "socket.",
    "subprocess.",
    "shutil.",
    "tempfile.",
    "glob.",
    "pty.",
    "fcntl.",
    "ftplib.",
    "smtplib.",
    "poplib.",
    "imaplib.",
    "urllib.",
    "http.",
    "webbrowser.",
    "sqlite3.",
    "ctypes.",
    "resource.",
    "syslog.",
    "winreg.",
    "msvcrt.",
)

#: Builtins replaced with raising stubs inside isolated callbacks.
DENIED_BUILTINS: Tuple[str, ...] = (
    "open",
    "exec",
    "eval",
    "compile",
    "input",
    "print",
    "breakpoint",
    "__import__",
    "exit",
    "quit",
)

_state = threading.local()
_hook_lock = threading.Lock()
_hook_installed = False


def _thread_contained() -> bool:
    return getattr(_state, "contained", 0) > 0


def _audit_hook(event: str, args) -> None:
    if not _thread_contained():
        return
    denied = getattr(_state, "denied_prefixes", DEFAULT_DENIED_PREFIXES)
    for prefix in denied:
        if event.startswith(prefix):
            raise IsolationError(
                f"operation {event!r} denied inside the IFC jail"
            )


def _ensure_hook() -> None:
    global _hook_installed
    with _hook_lock:
        if not _hook_installed:
            sys.addaudithook(_audit_hook)
            _hook_installed = True


def _denied_stub(name: str) -> Callable:
    def stub(*_args: Any, **_kwargs: Any):
        raise IsolationError(f"builtin {name}() is unavailable inside the IFC jail")

    stub.__name__ = name
    return stub


def restricted_builtins() -> dict:
    """A builtins namespace with I/O and dynamic-execution entries stubbed."""
    namespace = dict(vars(builtins))
    for name in DENIED_BUILTINS:
        if name in namespace:
            namespace[name] = _denied_stub(name)
    return namespace


class Jail:
    """Execution containment for unit callbacks.

    One jail instance is shared by an engine; the containment flag is
    per-thread, so concurrent callbacks are contained independently, and
    re-entrant containment (a contained callback synchronously triggering
    another delivery) nests correctly.
    """

    def __init__(self, denied_prefixes: Iterable[str] = DEFAULT_DENIED_PREFIXES):
        self._denied_prefixes = tuple(denied_prefixes)
        _ensure_hook()

    @contextmanager
    def contained(self):
        """Enter the jail for the calling thread."""
        _state.denied_prefixes = self._denied_prefixes
        _state.contained = getattr(_state, "contained", 0) + 1
        try:
            yield self
        finally:
            _state.contained -= 1

    @property
    def active(self) -> bool:
        """True when the calling thread is currently contained."""
        return _thread_contained()

    def isolate(self, callback: Callable) -> Callable:
        """Scope-isolate *callback* (see :func:`isolate_callback`)."""
        return isolate_callback(callback)


def isolate_callback(callback: Callable) -> Callable:
    """A clone of *callback* that cannot write through enclosing scopes.

    * Bound methods get a deep-copied receiver (objects may opt out of the
      copy — engine service handles define ``__deepcopy__`` returning
      themselves, mirroring how the paper's store stays shared while
      everything else is duplicated).
    * Free variables (closure cells) are deep-copied at isolation time.
    * The globals dictionary is replaced by a snapshot copy whose
      ``__builtins__`` is :func:`restricted_builtins`.
    """
    if isinstance(callback, types.MethodType):
        receiver = copy.deepcopy(callback.__self__)
        inner = _isolate_function(callback.__func__)
        return types.MethodType(inner, receiver)
    if isinstance(callback, types.FunctionType):
        return _isolate_function(callback)
    if callable(callback):
        call = getattr(type(callback), "__call__", None)
        if isinstance(call, types.FunctionType):
            receiver = copy.deepcopy(callback)
            return types.MethodType(_isolate_function(call), receiver)
        return callback
    raise TypeError(f"cannot isolate non-callable {callback!r}")


def _isolate_function(func: types.FunctionType) -> types.FunctionType:
    isolated_globals = dict(func.__globals__)
    isolated_globals["__builtins__"] = restricted_builtins()
    closure: Optional[Tuple[types.CellType, ...]] = None
    if func.__closure__:
        closure = tuple(
            types.CellType(_copy_cell_value(cell.cell_contents))
            for cell in func.__closure__
        )
    clone = types.FunctionType(
        func.__code__,
        isolated_globals,
        func.__name__,
        func.__defaults__,
        closure,
    )
    clone.__kwdefaults__ = copy.deepcopy(func.__kwdefaults__)
    clone.__doc__ = func.__doc__
    return clone


def _copy_cell_value(value: Any) -> Any:
    # Modules, functions and classes are shared: they cannot carry event
    # data out of the jail without I/O, and copying them is meaningless.
    if isinstance(value, (types.ModuleType, types.FunctionType, type)):
        return value
    return copy.deepcopy(value)
