"""SQL-92 subscription selectors (paper §4.2).

STOMP subscriptions may carry a ``selector`` header with an SQL-92
conditional expression evaluated over event attributes, mirroring JMS
message selectors. This module implements the subset web/event systems
use in practice:

* comparison: ``=  <>  <  <=  >  >=``
* logic: ``AND  OR  NOT`` (with SQL three-valued semantics)
* range/set: ``BETWEEN x AND y``, ``IN ('a', 'b')`` (with ``NOT``)
* pattern: ``LIKE 'pat%'`` with ``_``/``%`` wildcards and ``ESCAPE``
* null tests: ``IS NULL`` / ``IS NOT NULL``
* arithmetic: ``+  -  *  /`` and unary minus
* literals: strings in single quotes (doubled-quote escaping), integer
  and floating-point numbers, ``TRUE``/``FALSE``

Event attribute values are untyped strings (§4.1), so the evaluator
coerces them numerically when the other operand is numeric, as JMS
providers do for string-typed properties. A missing attribute evaluates
to SQL ``NULL``; the whole selector matches only when it evaluates to
``TRUE`` (unknown is not a match).
"""

from __future__ import annotations

import operator
import re
from functools import lru_cache
from typing import Any, Callable, List, Mapping, Optional, Tuple

from repro.exceptions import SelectorSyntaxError

#: A compiled evaluator: attributes → value (None is SQL NULL/UNKNOWN).
_Evaluator = Callable[[Mapping[str, str]], Any]

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><>|<=|>=|[=<>+\-*/(),])
  | (?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OR", "NOT", "BETWEEN", "IN", "LIKE", "ESCAPE", "IS", "NULL", "TRUE", "FALSE"}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Any):
        self.kind = kind  # 'number' | 'string' | 'op' | 'keyword' | 'name' | 'end'
        self.value = value

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SelectorSyntaxError(f"unexpected character {text[position]!r} at {position}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        if match.lastgroup == "number":
            raw = match.group("number")
            tokens.append(_Token("number", float(raw) if "." in raw else int(raw)))
        elif match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("string", raw))
        elif match.lastgroup == "op":
            tokens.append(_Token("op", match.group("op")))
        else:
            name = match.group("name")
            if name.upper() in _KEYWORDS:
                tokens.append(_Token("keyword", name.upper()))
            else:
                tokens.append(_Token("name", name))
    tokens.append(_Token("end", None))
    return tokens


# ---------------------------------------------------------------------------
# AST — each node evaluates to a value or to None (SQL NULL / unknown)
# ---------------------------------------------------------------------------


class _Node:
    """AST node. ``evaluate`` is the reference tree-walking interpreter;
    ``compile`` folds the node into a closure so the hot delivery path
    pays no per-event tree walk or attribute re-lookup."""

    __slots__ = ()

    def evaluate(self, attributes: Mapping[str, str]) -> Any:
        raise NotImplementedError

    def compile(self) -> _Evaluator:
        raise NotImplementedError


class _Literal(_Node):
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, attributes: Mapping[str, str]) -> Any:
        return self.value

    def compile(self) -> _Evaluator:
        value = self.value
        return lambda attributes: value


class _Attribute(_Node):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, attributes: Mapping[str, str]) -> Any:
        return attributes.get(self.name)

    def compile(self) -> _Evaluator:
        name = self.name
        return lambda attributes: attributes.get(name)


def _as_number(value: Any) -> Optional[float]:
    if value is None or isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value))
    except ValueError:
        return None


def _compare(op: str, left: Any, right: Any) -> Optional[bool]:
    """Three-valued comparison with JMS-style numeric coercion."""
    if left is None or right is None:
        return None
    if isinstance(left, bool) or isinstance(right, bool):
        if op == "=":
            return left is right
        if op == "<>":
            return left is not right
        return None
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        left_num, right_num = _as_number(left), _as_number(right)
        if left_num is None or right_num is None:
            return None if op not in ("=", "<>") else (op == "<>")
        left, right = left_num, right_num
    else:
        left, right = str(left), str(right)
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SelectorSyntaxError(f"unknown comparison operator {op!r}")


_COMPARATOR_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _make_comparator(op: str) -> Callable[[Any, Any], Optional[bool]]:
    """A closure with the exact semantics of :func:`_compare`, but with
    the operator resolved once at compile time instead of per event."""
    if op not in _COMPARATOR_OPS:
        raise SelectorSyntaxError(f"unknown comparison operator {op!r}")
    apply_op = _COMPARATOR_OPS[op]
    is_eq = op == "="
    is_ne = op == "<>"

    def compare(left: Any, right: Any) -> Optional[bool]:
        if left is None or right is None:
            return None
        if isinstance(left, bool) or isinstance(right, bool):
            if is_eq:
                return left is right
            if is_ne:
                return left is not right
            return None
        if isinstance(left, (int, float)) or isinstance(right, (int, float)):
            left_num, right_num = _as_number(left), _as_number(right)
            if left_num is None or right_num is None:
                return None if not (is_eq or is_ne) else is_ne
            return apply_op(left_num, right_num)
        return apply_op(str(left), str(right))

    return compare


class _Comparison(_Node):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: _Node, right: _Node):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, attributes: Mapping[str, str]) -> Optional[bool]:
        return _compare(self.op, self.left.evaluate(attributes), self.right.evaluate(attributes))

    def compile(self) -> _Evaluator:
        compare = _make_comparator(self.op)
        left = self.left.compile()
        right = self.right.compile()
        return lambda attributes: compare(left(attributes), right(attributes))


class _Arithmetic(_Node):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: _Node, right: _Node):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, attributes: Mapping[str, str]) -> Optional[float]:
        left = _as_number(self.left.evaluate(attributes))
        right = _as_number(self.right.evaluate(attributes))
        if left is None or right is None:
            return None
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if self.op == "/":
            if right == 0:
                return None
            return left / right
        raise SelectorSyntaxError(f"unknown arithmetic operator {self.op!r}")

    def compile(self) -> _Evaluator:
        op = self.op
        left = self.left.compile()
        right = self.right.compile()
        if op == "/":

            def divide(attributes: Mapping[str, str]) -> Optional[float]:
                left_num = _as_number(left(attributes))
                right_num = _as_number(right(attributes))
                if left_num is None or right_num is None or right_num == 0:
                    return None
                return left_num / right_num

            return divide
        if op == "+":
            apply_op = operator.add
        elif op == "-":
            apply_op = operator.sub
        elif op == "*":
            apply_op = operator.mul
        else:
            raise SelectorSyntaxError(f"unknown arithmetic operator {op!r}")

        def arith(attributes: Mapping[str, str]) -> Optional[float]:
            left_num = _as_number(left(attributes))
            right_num = _as_number(right(attributes))
            if left_num is None or right_num is None:
                return None
            return apply_op(left_num, right_num)

        return arith


class _Negate(_Node):
    __slots__ = ("operand",)

    def __init__(self, operand: _Node):
        self.operand = operand

    def evaluate(self, attributes: Mapping[str, str]) -> Optional[float]:
        value = _as_number(self.operand.evaluate(attributes))
        return None if value is None else -value

    def compile(self) -> _Evaluator:
        operand = self.operand.compile()

        def negate(attributes: Mapping[str, str]) -> Optional[float]:
            value = _as_number(operand(attributes))
            return None if value is None else -value

        return negate


class _Not(_Node):
    __slots__ = ("operand",)

    def __init__(self, operand: _Node):
        self.operand = operand

    def evaluate(self, attributes: Mapping[str, str]) -> Optional[bool]:
        value = self.operand.evaluate(attributes)
        if value is None:
            return None
        return not bool(value)

    def compile(self) -> _Evaluator:
        operand = self.operand.compile()

        def negate(attributes: Mapping[str, str]) -> Optional[bool]:
            value = operand(attributes)
            if value is None:
                return None
            return not bool(value)

        return negate


class _And(_Node):
    __slots__ = ("left", "right")

    def __init__(self, left: _Node, right: _Node):
        self.left = left
        self.right = right

    def evaluate(self, attributes: Mapping[str, str]) -> Optional[bool]:
        left = self.left.evaluate(attributes)
        if left is False:
            return False
        right = self.right.evaluate(attributes)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True

    def compile(self) -> _Evaluator:
        left = self.left.compile()
        right = self.right.compile()

        def conjoin(attributes: Mapping[str, str]) -> Optional[bool]:
            left_value = left(attributes)
            if left_value is False:
                return False
            right_value = right(attributes)
            if right_value is False:
                return False
            if left_value is None or right_value is None:
                return None
            return True

        return conjoin


class _Or(_Node):
    __slots__ = ("left", "right")

    def __init__(self, left: _Node, right: _Node):
        self.left = left
        self.right = right

    def evaluate(self, attributes: Mapping[str, str]) -> Optional[bool]:
        left = self.left.evaluate(attributes)
        if left is True:
            return True
        right = self.right.evaluate(attributes)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    def compile(self) -> _Evaluator:
        left = self.left.compile()
        right = self.right.compile()

        def disjoin(attributes: Mapping[str, str]) -> Optional[bool]:
            left_value = left(attributes)
            if left_value is True:
                return True
            right_value = right(attributes)
            if right_value is True:
                return True
            if left_value is None or right_value is None:
                return None
            return False

        return disjoin


class _Between(_Node):
    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand: _Node, low: _Node, high: _Node, negated: bool):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def evaluate(self, attributes: Mapping[str, str]) -> Optional[bool]:
        value = _as_number(self.operand.evaluate(attributes))
        low = _as_number(self.low.evaluate(attributes))
        high = _as_number(self.high.evaluate(attributes))
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if self.negated else result

    def compile(self) -> _Evaluator:
        operand = self.operand.compile()
        low = self.low.compile()
        high = self.high.compile()
        negated = self.negated

        def between(attributes: Mapping[str, str]) -> Optional[bool]:
            value = _as_number(operand(attributes))
            low_value = _as_number(low(attributes))
            high_value = _as_number(high(attributes))
            if value is None or low_value is None or high_value is None:
                return None
            result = low_value <= value <= high_value
            return not result if negated else result

        return between


class _In(_Node):
    __slots__ = ("operand", "choices", "negated")

    def __init__(self, operand: _Node, choices: Tuple[str, ...], negated: bool):
        self.operand = operand
        self.choices = choices
        self.negated = negated

    def evaluate(self, attributes: Mapping[str, str]) -> Optional[bool]:
        value = self.operand.evaluate(attributes)
        if value is None:
            return None
        result = str(value) in self.choices
        return not result if self.negated else result

    def compile(self) -> _Evaluator:
        operand = self.operand.compile()
        choices = frozenset(self.choices)
        negated = self.negated

        def contains(attributes: Mapping[str, str]) -> Optional[bool]:
            value = operand(attributes)
            if value is None:
                return None
            result = str(value) in choices
            return not result if negated else result

        return contains


class _Like(_Node):
    __slots__ = ("operand", "regex", "negated")

    def __init__(self, operand: _Node, pattern: str, escape: Optional[str], negated: bool):
        self.operand = operand
        self.regex = _like_to_regex(pattern, escape)
        self.negated = negated

    def evaluate(self, attributes: Mapping[str, str]) -> Optional[bool]:
        value = self.operand.evaluate(attributes)
        if value is None:
            return None
        result = self.regex.fullmatch(str(value)) is not None
        return not result if self.negated else result

    def compile(self) -> _Evaluator:
        operand = self.operand.compile()
        fullmatch = self.regex.fullmatch
        negated = self.negated

        def like(attributes: Mapping[str, str]) -> Optional[bool]:
            value = operand(attributes)
            if value is None:
                return None
            result = fullmatch(str(value)) is not None
            return not result if negated else result

        return like


class _IsNull(_Node):
    __slots__ = ("operand", "negated")

    def __init__(self, operand: _Node, negated: bool):
        self.operand = operand
        self.negated = negated

    def evaluate(self, attributes: Mapping[str, str]) -> bool:
        is_null = self.operand.evaluate(attributes) is None
        return not is_null if self.negated else is_null

    def compile(self) -> _Evaluator:
        operand = self.operand.compile()
        negated = self.negated

        def is_null(attributes: Mapping[str, str]) -> bool:
            result = operand(attributes) is None
            return not result if negated else result

        return is_null


def _like_to_regex(pattern: str, escape: Optional[str]):
    if escape is not None and len(escape) != 1:
        raise SelectorSyntaxError("ESCAPE requires a single character")
    parts: List[str] = []
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if escape is not None and char == escape:
            index += 1
            if index >= len(pattern):
                raise SelectorSyntaxError("dangling ESCAPE character in LIKE pattern")
            parts.append(re.escape(pattern[index]))
        elif char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
        index += 1
    return re.compile("".join(parts), re.DOTALL)


# ---------------------------------------------------------------------------
# Parser (recursive descent)
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._position = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._position]

    def _advance(self) -> _Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _accept(self, kind: str, value: Any = None) -> Optional[_Token]:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Any = None) -> _Token:
        token = self._accept(kind, value)
        if token is None:
            actual = self._peek()
            raise SelectorSyntaxError(
                f"expected {value or kind}, found {actual.value!r}"
            )
        return token

    # -- grammar -------------------------------------------------------------

    def parse(self) -> _Node:
        node = self._or_expr()
        if self._peek().kind != "end":
            raise SelectorSyntaxError(f"trailing input near {self._peek().value!r}")
        return node

    def _or_expr(self) -> _Node:
        node = self._and_expr()
        while self._accept("keyword", "OR"):
            node = _Or(node, self._and_expr())
        return node

    def _and_expr(self) -> _Node:
        node = self._not_expr()
        while self._accept("keyword", "AND"):
            node = _And(node, self._not_expr())
        return node

    def _not_expr(self) -> _Node:
        if self._accept("keyword", "NOT"):
            return _Not(self._not_expr())
        return self._condition()

    def _condition(self) -> _Node:
        operand = self._sum()
        token = self._peek()
        if token.kind == "op" and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self._advance()
            return _Comparison(token.value, operand, self._sum())
        negated = bool(self._accept("keyword", "NOT"))
        if self._accept("keyword", "BETWEEN"):
            low = self._sum()
            self._expect("keyword", "AND")
            return _Between(operand, low, self._sum(), negated)
        if self._accept("keyword", "IN"):
            return _In(operand, self._literal_list(), negated)
        if self._accept("keyword", "LIKE"):
            pattern = self._expect("string").value
            escape = None
            if self._accept("keyword", "ESCAPE"):
                escape = self._expect("string").value
            return _Like(operand, pattern, escape, negated)
        if negated:
            raise SelectorSyntaxError("NOT must be followed by BETWEEN, IN or LIKE here")
        if self._accept("keyword", "IS"):
            is_negated = bool(self._accept("keyword", "NOT"))
            self._expect("keyword", "NULL")
            return _IsNull(operand, is_negated)
        return operand

    def _literal_list(self) -> Tuple[str, ...]:
        self._expect("op", "(")
        values: List[str] = [self._expect("string").value]
        while self._accept("op", ","):
            values.append(self._expect("string").value)
        self._expect("op", ")")
        return tuple(values)

    def _sum(self) -> _Node:
        node = self._product()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self._advance()
                node = _Arithmetic(token.value, node, self._product())
            else:
                return node

    def _product(self) -> _Node:
        node = self._unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/"):
                self._advance()
                node = _Arithmetic(token.value, node, self._unary())
            else:
                return node

    def _unary(self) -> _Node:
        if self._accept("op", "-"):
            return _Negate(self._unary())
        if self._accept("op", "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> _Node:
        token = self._peek()
        if token.kind in ("number", "string"):
            self._advance()
            return _Literal(token.value)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            self._advance()
            return _Literal(token.value == "TRUE")
        if token.kind == "keyword" and token.value == "NULL":
            self._advance()
            return _Literal(None)
        if token.kind == "name":
            self._advance()
            return _Attribute(token.value)
        if self._accept("op", "("):
            node = self._or_expr()
            self._expect("op", ")")
            return node
        raise SelectorSyntaxError(f"unexpected token {token.value!r}")


class Selector:
    """A compiled selector; ``matches`` applies SQL semantics (NULL ≠ match).

    Parsing produces both the AST (kept as the reference interpreter,
    reachable via :meth:`matches_interpreted`) and a compiled closure
    tree used by :meth:`matches` on the hot delivery path. Instances are
    immutable and safe to share across subscriptions and threads.
    """

    __slots__ = ("text", "_root", "_compiled")

    def __init__(self, text: str):
        self.text = text
        self._root = _Parser(_tokenize(text)).parse()
        self._compiled = self._root.compile()

    def matches(self, attributes: Mapping[str, str]) -> bool:
        return self._compiled(attributes) is True

    def matches_interpreted(self, attributes: Mapping[str, str]) -> bool:
        """The reference tree-walking evaluation (for equivalence tests)."""
        return self._root.evaluate(attributes) is True

    def __repr__(self) -> str:
        return f"Selector({self.text!r})"


@lru_cache(maxsize=1024)
def _cached_selector(text: str) -> Selector:
    return Selector(text)


def parse_selector(text: Optional[str]) -> Optional[Selector]:
    """Compile *text*, returning ``None`` for empty/absent selectors.

    Results are cached by selector text, so repeated STOMP ``selector``
    headers (every subscriber of a fleet sending the same expression)
    parse and compile exactly once.
    """
    if text is None or not text.strip():
        return None
    return _cached_selector(text)


def selector_literal(value: str) -> str:
    """Quote *value* as a SQL-92 selector string literal.

    Selector strings escape an embedded single quote by doubling it.
    Any code interpolating runtime data into a selector expression must
    go through this — raw f-string interpolation of a value containing
    ``'`` produces an unparseable (or differently-scoped) filter.
    """
    return "'" + value.replace("'", "''") + "'"
