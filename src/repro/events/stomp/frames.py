"""STOMP 1.1 frame encoding and incremental decoding.

A STOMP frame is::

    COMMAND
    header1:value1
    header2:value2

    body^@

(the NUL byte ``^@`` terminates the frame). Header names and values are
escaped per STOMP 1.1 (``\\n`` → ``\\\\n``, ``:`` → ``\\\\c``, ``\\\\`` →
``\\\\\\\\``, ``\\r`` → ``\\\\r``). When a ``content-length`` header is
present the body is read as exactly that many bytes, allowing NUL bytes
in payloads; frames we encode always include it.

Binary safety: bodies are stored as ``str`` but encoded and decoded with
``utf-8``/``surrogateescape``, so *any* byte sequence — including bytes
that are not valid UTF-8 — transits the fabric byte-exact. A ``bytes``
body passed to :class:`Frame` is normalised to its surrogate-escaped
string form; :attr:`Frame.body_bytes` recovers the exact original bytes.
This is what lets the labeled-document codec ride the frame body as the
cluster IPC format without an extra base64 layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.exceptions import StompProtocolError

#: Commands a client may send.
CLIENT_COMMANDS = frozenset(
    {"CONNECT", "STOMP", "SEND", "SUBSCRIBE", "UNSUBSCRIBE", "ACK", "NACK",
     "BEGIN", "COMMIT", "ABORT", "DISCONNECT"}
)
#: Commands a server may send.
SERVER_COMMANDS = frozenset({"CONNECTED", "MESSAGE", "RECEIPT", "ERROR"})

_ESCAPES = [("\\", "\\\\"), ("\r", "\\r"), ("\n", "\\n"), (":", "\\c")]
_UNESCAPES = {"\\\\": "\\", "\\r": "\r", "\\n": "\n", "\\c": ":"}


def _escape(text: str) -> str:
    for raw, escaped in _ESCAPES:
        text = text.replace(raw, escaped)
    return text


def _unescape(text: str) -> str:
    result: List[str] = []
    index = 0
    while index < len(text):
        if text[index] == "\\":
            token = text[index : index + 2]
            if token not in _UNESCAPES:
                raise StompProtocolError(f"invalid escape sequence {token!r}")
            result.append(_UNESCAPES[token])
            index += 2
        else:
            result.append(text[index])
            index += 1
    return "".join(result)


class Frame:
    """A decoded STOMP frame.

    ``body`` may be given as ``str`` or ``bytes``; bytes are stored in
    their surrogate-escaped string form so the frame type stays
    uniformly ``str`` while :attr:`body_bytes` round-trips byte-exact.
    """

    __slots__ = ("command", "headers", "body")

    def __init__(
        self,
        command: str,
        headers: Optional[Dict[str, str]] = None,
        body: "str | bytes" = "",
    ):
        self.command = command
        self.headers = dict(headers or {})
        if isinstance(body, (bytes, bytearray, memoryview)):
            body = bytes(body).decode("utf-8", "surrogateescape")
        self.body = body

    @property
    def body_bytes(self) -> bytes:
        """The body as the exact bytes it was (or will be) framed as."""
        return self.body.encode("utf-8", "surrogateescape")

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name, default)

    def require(self, name: str) -> str:
        value = self.headers.get(name)
        if value is None:
            raise StompProtocolError(f"{self.command} frame missing {name!r} header")
        return value

    def __eq__(self, other) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return (
            self.command == other.command
            and self.headers == other.headers
            and self.body == other.body
        )

    def __repr__(self) -> str:
        return f"Frame({self.command!r}, headers={self.headers!r}, body={self.body!r})"


def encode_frame(frame: Frame) -> bytes:
    """Serialise a frame; always emits ``content-length``."""
    if frame.command not in CLIENT_COMMANDS | SERVER_COMMANDS:
        raise StompProtocolError(f"unknown STOMP command {frame.command!r}")
    body = frame.body_bytes
    lines = [frame.command]
    for name, value in frame.headers.items():
        lines.append(f"{_escape(str(name))}:{_escape(str(value))}")
    lines.append(f"content-length:{len(body)}")
    head = "\n".join(lines).encode("utf-8", "surrogateescape")
    return head + b"\n\n" + body + b"\x00"


class FrameParser:
    """Incremental parser: feed bytes, collect complete frames.

    Handles partial frames across TCP reads, ``content-length`` bodies
    with embedded NULs, and the heart-beating EOLs STOMP allows between
    frames.
    """

    def __init__(self, max_frame_size: int = 1 << 22):
        self._buffer = bytearray()
        self._max = max_frame_size

    def feed(self, data: bytes) -> List[Frame]:
        self._buffer.extend(data)
        if len(self._buffer) > self._max:
            raise StompProtocolError("frame exceeds maximum size")
        frames: List[Frame] = []
        while True:
            frame, consumed = self._try_parse()
            if frame is None:
                return frames
            frames.append(frame)
            del self._buffer[:consumed]

    def _try_parse(self) -> Tuple[Optional[Frame], int]:
        # Skip inter-frame EOLs (heart-beats).
        start = 0
        while start < len(self._buffer) and self._buffer[start : start + 1] in (b"\n", b"\r"):
            start += 1
        head_end = self._buffer.find(b"\n\n", start)
        if head_end == -1:
            return None, 0
        header_block = self._buffer[start:head_end].decode("utf-8", "surrogateescape")
        lines = header_block.split("\n")
        command = lines[0].strip("\r")
        if command not in CLIENT_COMMANDS | SERVER_COMMANDS:
            raise StompProtocolError(f"unknown STOMP command {command!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            line = line.rstrip("\r")
            if not line:
                continue
            if ":" not in line:
                raise StompProtocolError(f"malformed header line {line!r}")
            name, _colon, value = line.partition(":")
            name = _unescape(name)
            # STOMP: the FIRST occurrence of a repeated header wins.
            if name not in headers:
                headers[name] = _unescape(value)

        body_start = head_end + 2
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError:
                raise StompProtocolError(f"bad content-length {length_header!r}") from None
            if len(self._buffer) < body_start + length + 1:
                return None, 0
            body = bytes(self._buffer[body_start : body_start + length])
            if self._buffer[body_start + length : body_start + length + 1] != b"\x00":
                raise StompProtocolError("frame body not NUL-terminated")
            consumed = body_start + length + 1
        else:
            nul = self._buffer.find(b"\x00", body_start)
            if nul == -1:
                return None, 0
            body = bytes(self._buffer[body_start:nul])
            consumed = nul + 1
        headers.pop("content-length", None)
        return Frame(command, headers, body.decode("utf-8", "surrogateescape")), consumed
