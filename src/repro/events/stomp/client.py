"""STOMP client for the SafeWeb broker.

The paper's client side sits on EventMachine; here a listener thread
reads frames off the socket and dispatches MESSAGE frames to per-
subscription callbacks as reconstructed :class:`Event` objects (labels
included). Other frames (CONNECTED, RECEIPT, ERROR) resolve waiting
calls, giving a simple blocking API:

    client = StompClient(host, port, login="data_producer").connect()
    client.subscribe("/patient_report", on_event, selector="type = 'cancer'")
    client.send("/patient_report", {"type": "cancer"}, labels=[...])
    client.disconnect()
"""

from __future__ import annotations

import itertools
import queue
import socket
import ssl
import threading
from typing import Callable, Dict, Iterable, Optional

from repro.core.labels import Label, LabelSet
from repro.events.event import Event
from repro.events.stomp.frames import Frame, FrameParser, encode_frame
from repro.events.stomp.server import LABEL_HEADER, RESERVED_HEADERS
from repro.exceptions import SafeWebError, StompProtocolError
from repro.faults import NULL_FAULTS, ChaosInjector, InjectedFault

_client_ids = itertools.count(1)


class StompClient:
    """A blocking STOMP client with a background listener thread."""

    #: Receive poll interval of the I/O thread; bounds write latency.
    POLL_SECONDS = 0.01

    def __init__(
        self,
        host: str,
        port: int,
        login: str = "anonymous",
        passcode: str = "",
        tls_context: Optional[ssl.SSLContext] = None,
        timeout: float = 10.0,
        chaos: ChaosInjector = NULL_FAULTS,
    ):
        self._host = host
        self._port = port
        self._login = login
        self._passcode = passcode
        self._tls_context = tls_context
        self._timeout = timeout
        self._chaos = chaos
        self._sock: Optional[socket.socket] = None
        self._listener: Optional[threading.Thread] = None
        self._callbacks: Dict[str, Callable[[Event], None]] = {}
        self._control: "queue.Queue[Frame]" = queue.Queue()
        # All socket writes happen in the listener thread (single-thread
        # multiplexing): concurrent SSL_read/SSL_write from different
        # threads is unsafe on one TLS connection.
        self._outgoing: "queue.Queue[Frame]" = queue.Queue()
        self._connected = threading.Event()
        #: Subscriptions created with ``ack="client"``; their callbacks
        #: receive ``(event, message_id)`` so the consumer can ack after
        #: it has actually finished processing.
        self._ack_subscriptions: set = set()
        self.errors: list = []

    # -- lifecycle -----------------------------------------------------------

    def connect(self) -> "StompClient":
        # A fresh control queue: a previous session's connection-lost
        # sentinel must not satisfy this connection's handshake wait.
        self._control = queue.Queue()
        sock = socket.create_connection((self._host, self._port), timeout=self._timeout)
        if self._tls_context is not None:
            sock = self._tls_context.wrap_socket(sock, server_hostname=self._host)
        self._sock = sock
        self._listener = threading.Thread(
            target=self._listen, name="safeweb-stomp-client", daemon=True
        )
        self._listener.start()
        self._transmit(
            Frame("CONNECT", {"login": self._login, "passcode": self._passcode})
        )
        reply = self._await_control({"CONNECTED", "ERROR"})
        if reply.command == "ERROR":
            raise SafeWebError(f"broker rejected connection: {reply.header('message')}")
        self._connected.set()
        return self

    def disconnect(self) -> None:
        if self._sock is None:
            return
        try:
            self._transmit(Frame("DISCONNECT", {"receipt": "bye"}))
            self._await_control({"RECEIPT"}, timeout=1.0)
        except Exception:  # noqa: BLE001 - best-effort goodbye
            pass
        finally:
            self._close()

    @property
    def connected(self) -> bool:
        return self._connected.is_set()

    # -- messaging ------------------------------------------------------------

    def send(
        self,
        destination: str,
        attributes: Optional[dict] = None,
        payload: "str | bytes" = "",
        labels: LabelSet | Iterable[Label | str] = (),
        receipt: bool = False,
    ) -> None:
        if not isinstance(labels, LabelSet):
            labels = LabelSet(labels)
        headers = {"destination": destination}
        for name, value in (attributes or {}).items():
            if str(name) in RESERVED_HEADERS:
                raise StompProtocolError(f"attribute name {name!r} is reserved")
            headers[str(name)] = str(value)
        if labels:
            headers[LABEL_HEADER] = ",".join(labels.to_uris())
        if receipt:
            headers["receipt"] = f"send-{next(_client_ids)}"
        self._transmit(Frame("SEND", headers, payload or ""))
        if receipt:
            self._await_control({"RECEIPT"})

    def subscribe(
        self,
        destination: str,
        callback: Callable[[Event], None],
        selector: Optional[str] = None,
        subscription_id: Optional[str] = None,
        require_integrity: LabelSet | Iterable[Label | str] = (),
        ack: str = "auto",
    ) -> str:
        subscription_id = subscription_id or f"client-sub-{next(_client_ids)}"
        headers = {
            "destination": destination,
            "id": subscription_id,
            "receipt": f"subscribe-{subscription_id}",
        }
        if selector:
            headers["selector"] = selector
        if ack != "auto":
            headers["ack"] = ack
            self._ack_subscriptions.add(subscription_id)
        if not isinstance(require_integrity, LabelSet):
            require_integrity = LabelSet(require_integrity)
        if require_integrity:
            from repro.events.stomp.server import REQUIRE_INTEGRITY_HEADER

            headers[REQUIRE_INTEGRITY_HEADER] = ",".join(require_integrity.to_uris())
        self._callbacks[subscription_id] = callback
        self._transmit(Frame("SUBSCRIBE", headers))
        self._await_control({"RECEIPT"})
        return subscription_id

    def ack(self, message_id: str, subscription_id: Optional[str] = None) -> None:
        """Acknowledge a ``ack="client"`` delivery (non-blocking).

        Fire-and-forget by design: acks are frequently sent from inside
        delivery callbacks, which run on the listener thread — a
        blocking receipt wait there would deadlock the connection.
        """
        headers = {"message-id": message_id}
        if subscription_id is not None:
            headers["subscription"] = subscription_id
        self._transmit(Frame("ACK", headers))

    def nack(self, message_id: str, subscription_id: Optional[str] = None) -> None:
        """Refuse a delivery; the server dead-letters it immediately."""
        headers = {"message-id": message_id}
        if subscription_id is not None:
            headers["subscription"] = subscription_id
        self._transmit(Frame("NACK", headers))

    def unsubscribe(self, subscription_id: str) -> None:
        self._callbacks.pop(subscription_id, None)
        self._ack_subscriptions.discard(subscription_id)
        self._transmit(
            Frame(
                "UNSUBSCRIBE",
                {"id": subscription_id, "receipt": f"unsubscribe-{subscription_id}"},
            )
        )
        self._await_control({"RECEIPT"})

    # -- internals ---------------------------------------------------------------

    def _transmit(self, frame: Frame) -> None:
        if self._sock is None:
            raise SafeWebError("client is not connected")
        self._outgoing.put(frame)

    def _await_control(self, commands, timeout: Optional[float] = None) -> Frame:
        deadline = timeout if timeout is not None else self._timeout
        try:
            frame = self._control.get(timeout=deadline)
        except queue.Empty:
            raise SafeWebError(f"timed out waiting for {sorted(commands)}") from None
        if frame.command not in commands and frame.command == "ERROR":
            raise SafeWebError(f"broker error: {frame.header('message')}")
        return frame

    def _listen(self) -> None:
        parser = FrameParser()
        sock = self._sock
        sock.settimeout(self.POLL_SECONDS)
        try:
            while True:
                self._flush_outgoing(sock)
                try:
                    data = sock.recv(65536)
                except TimeoutError:
                    continue
                except ssl.SSLError as error:
                    # SSL read timeouts surface as generic SSLError
                    # ("The read operation timed out"), not TimeoutError.
                    if isinstance(error, ssl.SSLWantReadError) or "timed out" in str(error):
                        continue
                    return
                if not data:
                    return
                for frame in parser.feed(data):
                    if frame.command == "MESSAGE":
                        self._on_message(frame)
                    else:
                        self._control.put(frame)
        except (OSError, InjectedFault):
            # Socket death — including a send failure surfaced by
            # _flush_outgoing (or its chaos point). The finally below
            # signals the loss; swallowing it here without that signal
            # was the old silent-death bug: queued frames vanished and
            # every blocking wait ran to its full timeout.
            return
        finally:
            self._connected.clear()
            # Fail any blocked _await_control caller fast, and make the
            # *next* blocking call fail too (sends are fire-and-forget
            # otherwise): a dead connection must be observable.
            self._control.put(Frame("ERROR", {"message": "connection lost"}))

    def _flush_outgoing(self, sock) -> None:
        while True:
            try:
                frame = self._outgoing.get_nowait()
            except queue.Empty:
                return
            self._chaos.hit("stomp.client.flush")
            payload = encode_frame(frame)
            sock.settimeout(self._timeout)
            try:
                sock.sendall(payload)
            finally:
                sock.settimeout(self.POLL_SECONDS)

    def _on_message(self, frame: Frame) -> None:
        subscription_id = frame.header("subscription", "")
        callback = self._callbacks.get(subscription_id)
        if callback is None:
            return
        attributes = {
            name: value
            for name, value in frame.headers.items()
            if name not in RESERVED_HEADERS and name != "message-id"
        }
        labels = LabelSet.from_uris(
            uri for uri in frame.header(LABEL_HEADER, "").split(",") if uri
        )
        event = Event(
            topic=frame.require("destination"),
            attributes=attributes,
            payload=frame.body or None,
            labels=labels,
        )
        try:
            if subscription_id in self._ack_subscriptions:
                callback(event, frame.header("message-id", ""))
            else:
                callback(event)
        except Exception as error:  # noqa: BLE001 - callbacks must not kill the listener
            self.errors.append(error)

    def _close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._connected.clear()
