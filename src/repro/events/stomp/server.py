"""The STOMP server: the broker's wire interface (paper §4.2).

Bridges TCP clients to an in-process :class:`~repro.events.broker.Broker`:

* ``CONNECT`` authenticates the client against the policy (units and
  users both work as broker principals) and answers ``CONNECTED``;
* ``SUBSCRIBE`` registers a broker subscription whose clearance is the
  *authenticated principal's* — clients cannot claim clearance in the
  frame, which is what makes the label filtering trustworthy;
* ``SEND`` publishes an event: non-reserved headers become event
  attributes, the body becomes the payload and ``x-safeweb-labels``
  (comma-separated URIs) become confidentiality/integrity labels;
* matching events come back as ``MESSAGE`` frames with the label header
  restored, so labels survive the wire round trip.

TLS: pass an ``ssl.SSLContext`` to wrap accepted connections — the
paper's "extended with SSL support at the transport layer".
"""

from __future__ import annotations

import queue
import socketserver
import ssl
import threading
from typing import Dict, Optional

from repro.core.audit import AuditLog, default_audit_log
from repro.core.labels import LabelSet
from repro.core.policy import Policy
from repro.core.privileges import PrivilegeSet
from repro.events.broker import Broker
from repro.events.event import Event
from repro.events.stomp.frames import Frame, FrameParser, encode_frame
from repro.exceptions import SelectorSyntaxError, StompProtocolError

#: Headers that carry protocol state rather than event attributes.
RESERVED_HEADERS = frozenset(
    {
        "destination",
        "id",
        "subscription",
        "message-id",
        "content-length",
        "content-type",
        "receipt",
        "receipt-id",
        "login",
        "passcode",
        "selector",
        "session",
        "version",
        "ack",
        "transaction",
        "x-safeweb-labels",
        "x-safeweb-require-integrity",
    }
)

LABEL_HEADER = "x-safeweb-labels"
REQUIRE_INTEGRITY_HEADER = "x-safeweb-require-integrity"


def _is_ssl_timeout(error: ssl.SSLError) -> bool:
    return isinstance(error, ssl.SSLWantReadError) or "timed out" in str(error)


def event_to_message(event: Event, subscription_id: str) -> Frame:
    headers = {
        "destination": event.topic,
        "subscription": subscription_id,
        "message-id": str(event.event_id),
    }
    headers.update(event.attributes)
    if event.labels:
        headers[LABEL_HEADER] = ",".join(event.labels.to_uris())
    return Frame("MESSAGE", headers, event.payload or "")


def frame_to_event(frame: Frame) -> Event:
    attributes = {
        name: value for name, value in frame.headers.items() if name not in RESERVED_HEADERS
    }
    label_header = frame.header(LABEL_HEADER, "")
    labels = LabelSet.from_uris(uri for uri in label_header.split(",") if uri)
    return Event(
        topic=frame.require("destination"),
        attributes=attributes,
        payload=frame.body or None,
        labels=labels,
    )


class _Connection(socketserver.BaseRequestHandler):
    """One client session; runs in its own thread.

    All socket I/O for the connection happens in this one thread: other
    threads (the broker dispatcher delivering MESSAGE frames) enqueue
    outgoing frames and the handler loop flushes the queue between short
    receive timeouts. Concurrent ``SSL_read``/``SSL_write`` on one TLS
    connection from different threads is undefined behaviour in OpenSSL,
    so single-thread multiplexing is what makes the TLS transport sound.
    """

    server: "StompServer"

    #: Receive poll interval; bounds outgoing-frame latency.
    POLL_SECONDS = 0.01

    def setup(self) -> None:
        super().setup()
        self.parser = FrameParser()
        self.principal: Optional[str] = None
        self.clearance = PrivilegeSet.empty()
        self.subscriptions: Dict[str, str] = {}  # client id -> broker id
        self.outgoing: "queue.Queue[Frame]" = queue.Queue()
        self.closed = False

    def handle(self) -> None:
        sock = self.request
        try:
            if self.server.tls_context is not None:
                sock = self.server.tls_context.wrap_socket(sock, server_side=True)
                self.request = sock
        except (OSError, ssl.SSLError):
            return  # handshake failed (e.g. plaintext client)
        sock.settimeout(self.POLL_SECONDS)
        try:
            while not self.closed:
                self._flush_outgoing(sock)
                try:
                    data = sock.recv(65536)
                except TimeoutError:
                    continue
                except ssl.SSLError as error:
                    # SSL read timeouts surface as generic SSLError
                    # ("The read operation timed out"), not TimeoutError.
                    if _is_ssl_timeout(error):
                        continue
                    return
                if not data:
                    return
                self._dispatch_frames(self.parser.feed(data))
            self._flush_outgoing(sock)
        except (StompProtocolError, SelectorSyntaxError) as error:
            self._send(Frame("ERROR", {"message": str(error)}))
            self._flush_outgoing(sock)
        except OSError:
            pass  # client went away
        finally:
            self._cleanup()

    def _flush_outgoing(self, sock) -> None:
        while True:
            try:
                frame = self.outgoing.get_nowait()
            except queue.Empty:
                return
            payload = encode_frame(frame)
            sock.settimeout(5.0)
            try:
                sock.sendall(payload)
            except OSError:
                self.closed = True
                return
            finally:
                sock.settimeout(self.POLL_SECONDS)

    # -- frame dispatch --------------------------------------------------------

    def _dispatch_frames(self, frames) -> None:
        """Dispatch a parsed batch, publishing runs of SEND frames together.

        A producer that writes several SEND frames per TCP segment gets
        them published through :meth:`Broker.publish_many` — one queue
        handoff for the whole run — while every other command keeps its
        per-frame handling. Error and receipt semantics stay per frame.
        """
        pending_sends: list = []
        for frame in frames:
            if frame.command == "SEND":
                pending_sends.append(frame)
                continue
            self._flush_sends(pending_sends)
            self._dispatch(frame)
        self._flush_sends(pending_sends)

    def _flush_sends(self, frames: list) -> None:
        if not frames:
            return
        events = []
        publishable = []
        try:
            for frame in frames:
                try:
                    principal = self._require_connected()
                    events.append(frame_to_event(frame))
                    publishable.append(frame)
                except (StompProtocolError, SelectorSyntaxError) as error:
                    self._send(Frame("ERROR", {"message": str(error)}))
                    self._maybe_receipt(frame)
        finally:
            # Publish whatever converted cleanly even if a later frame
            # raised something unexpected (e.g. a malformed label URI) —
            # the per-frame dispatch this replaces had already published
            # the earlier events by that point.
            if events:
                if len(events) == 1:
                    self.server.broker.publish(events[0], publisher=principal)
                else:
                    self.server.broker.publish_many(events, publisher=principal)
                for frame in publishable:
                    self._maybe_receipt(frame)
            frames.clear()

    def _dispatch(self, frame: Frame) -> None:
        handler = {
            "CONNECT": self._on_connect,
            "STOMP": self._on_connect,
            "SEND": self._on_send,
            "SUBSCRIBE": self._on_subscribe,
            "UNSUBSCRIBE": self._on_unsubscribe,
            "DISCONNECT": self._on_disconnect,
        }.get(frame.command)
        if handler is None:
            self._send(Frame("ERROR", {"message": f"unsupported command {frame.command}"}))
            return
        try:
            handler(frame)
        except (StompProtocolError, SelectorSyntaxError) as error:
            self._send(Frame("ERROR", {"message": str(error)}))
        self._maybe_receipt(frame)

    def _on_connect(self, frame: Frame) -> None:
        login = frame.header("login", "anonymous")
        passcode = frame.header("passcode", "")
        clearance = self.server.authenticate(login, passcode)
        if clearance is None:
            self._send(Frame("ERROR", {"message": "authentication failed"}))
            self.closed = True
            return
        self.principal = login
        self.clearance = clearance
        self._send(
            Frame(
                "CONNECTED",
                {"version": "1.1", "session": f"session-{id(self) & 0xFFFF:04x}"},
            )
        )
        self.server.audit.allowed("stomp", "connect", login)

    def _require_connected(self) -> str:
        if self.principal is None:
            raise StompProtocolError("not connected; send CONNECT first")
        return self.principal

    def _on_send(self, frame: Frame) -> None:
        principal = self._require_connected()
        event = frame_to_event(frame)
        self.server.broker.publish(event, publisher=principal)

    def _on_subscribe(self, frame: Frame) -> None:
        principal = self._require_connected()
        destination = frame.require("destination")
        client_id = frame.require("id")
        if client_id in self.subscriptions:
            raise StompProtocolError(f"subscription id {client_id!r} already in use")
        selector = frame.header("selector")
        integrity_header = frame.header(REQUIRE_INTEGRITY_HEADER, "")
        require_integrity = LabelSet.from_uris(
            uri for uri in integrity_header.split(",") if uri
        )

        def deliver(event: Event, _client_id=client_id) -> None:
            self._send(event_to_message(event, _client_id))

        subscription = self.server.broker.subscribe(
            destination,
            deliver,
            principal=principal,
            clearance=self.clearance,
            selector=selector,
            require_integrity=require_integrity,
        )
        self.subscriptions[client_id] = subscription.subscription_id

    def _on_unsubscribe(self, frame: Frame) -> None:
        self._require_connected()
        client_id = frame.require("id")
        broker_id = self.subscriptions.pop(client_id, None)
        if broker_id is None:
            raise StompProtocolError(f"unknown subscription id {client_id!r}")
        self.server.broker.unsubscribe(broker_id)

    def _on_disconnect(self, _frame: Frame) -> None:
        self.closed = True

    def _maybe_receipt(self, frame: Frame) -> None:
        receipt = frame.header("receipt")
        if receipt is not None:
            self._send(Frame("RECEIPT", {"receipt-id": receipt}))

    # -- plumbing ------------------------------------------------------------------

    def _send(self, frame: Frame) -> None:
        """Queue a frame; the handler thread performs the socket write."""
        self.outgoing.put(frame)

    def _cleanup(self) -> None:
        for broker_id in self.subscriptions.values():
            self.server.broker.unsubscribe(broker_id)
        self.subscriptions.clear()


class StompServer(socketserver.ThreadingTCPServer):
    """A threaded STOMP server over an IFC broker.

    ``policy`` supplies per-login clearance: a login naming a unit gets
    the unit's (withholding-adjusted) privileges, a login naming a user
    must present the user's password. Without a policy every login is
    accepted with empty clearance — only unlabelled events flow, which is
    fail-safe.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        broker: Broker,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: Optional[Policy] = None,
        tls_context: Optional[ssl.SSLContext] = None,
        audit: Optional[AuditLog] = None,
    ):
        self.broker = broker
        self.policy = policy
        self.tls_context = tls_context
        self.audit = audit if audit is not None else default_audit_log()
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _Connection)

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self):
        return self.server_address

    def start(self) -> "StompServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="safeweb-stomp", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None

    # -- authentication ----------------------------------------------------------

    def authenticate(self, login: str, passcode: str) -> Optional[PrivilegeSet]:
        """Resolve a login to its clearance; ``None`` means reject."""
        if self.policy is None:
            return PrivilegeSet.empty()
        document_units = self.policy.unit_names
        if login in document_units:
            return self.policy.unit(login).effective_clearance()
        user = self.policy.find_user(login)
        if user is not None:
            if not user.check_password(passcode):
                self.audit.denied("stomp", "connect", login, detail="bad passcode")
                return None
            return user.privileges
        self.audit.denied("stomp", "connect", login, detail="unknown principal")
        return None
