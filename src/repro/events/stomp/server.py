"""The STOMP server: the broker's wire interface (paper §4.2).

Bridges TCP clients to an in-process :class:`~repro.events.broker.Broker`:

* ``CONNECT`` authenticates the client against the policy (units and
  users both work as broker principals) and answers ``CONNECTED``;
* ``SUBSCRIBE`` registers a broker subscription whose clearance is the
  *authenticated principal's* — clients cannot claim clearance in the
  frame, which is what makes the label filtering trustworthy;
* ``SEND`` publishes an event: non-reserved headers become event
  attributes, the body becomes the payload and ``x-safeweb-labels``
  (comma-separated URIs) become confidentiality/integrity labels;
* matching events come back as ``MESSAGE`` frames with the label header
  restored, so labels survive the wire round trip.

TLS: pass an ``ssl.SSLContext`` to wrap accepted connections — the
paper's "extended with SSL support at the transport layer".
"""

from __future__ import annotations

import itertools
import queue
import socketserver
import ssl
import threading
from typing import Dict, Optional, Tuple

from repro.core.audit import AuditLog, default_audit_log
from repro.core.labels import LabelSet
from repro.core.policy import Policy
from repro.core.privileges import PrivilegeSet
from repro.events.broker import Broker
from repro.events.event import Event
from repro.events.stomp.frames import Frame, FrameParser, encode_frame
from repro.events.supervision import SupervisionPolicy, Supervisor
from repro.exceptions import SelectorSyntaxError, StompProtocolError

#: Headers that carry protocol state rather than event attributes.
RESERVED_HEADERS = frozenset(
    {
        "destination",
        "id",
        "subscription",
        "message-id",
        "content-length",
        "content-type",
        "receipt",
        "receipt-id",
        "login",
        "passcode",
        "selector",
        "session",
        "version",
        "ack",
        "transaction",
        "x-safeweb-labels",
        "x-safeweb-require-integrity",
    }
)

LABEL_HEADER = "x-safeweb-labels"
REQUIRE_INTEGRITY_HEADER = "x-safeweb-require-integrity"


def _is_ssl_timeout(error: ssl.SSLError) -> bool:
    return isinstance(error, ssl.SSLWantReadError) or "timed out" in str(error)


def event_to_message(event: Event, subscription_id: str) -> Frame:
    headers = {
        "destination": event.topic,
        "subscription": subscription_id,
        "message-id": str(event.event_id),
    }
    headers.update(event.attributes)
    if event.labels:
        headers[LABEL_HEADER] = ",".join(event.labels.to_uris())
    return Frame("MESSAGE", headers, event.payload or "")


def frame_to_event(frame: Frame) -> Event:
    attributes = {
        name: value for name, value in frame.headers.items() if name not in RESERVED_HEADERS
    }
    label_header = frame.header(LABEL_HEADER, "")
    labels = LabelSet.from_uris(uri for uri in label_header.split(",") if uri)
    return Event(
        topic=frame.require("destination"),
        attributes=attributes,
        payload=frame.body or None,
        labels=labels,
    )


class _Connection(socketserver.BaseRequestHandler):
    """One client session; runs in its own thread.

    All socket I/O for the connection happens in this one thread: other
    threads (the broker dispatcher delivering MESSAGE frames) enqueue
    outgoing frames and the handler loop flushes the queue between short
    receive timeouts. Concurrent ``SSL_read``/``SSL_write`` on one TLS
    connection from different threads is undefined behaviour in OpenSSL,
    so single-thread multiplexing is what makes the TLS transport sound.
    """

    server: "StompServer"

    #: Receive poll interval; bounds outgoing-frame latency.
    POLL_SECONDS = 0.01

    def setup(self) -> None:
        super().setup()
        self.parser = FrameParser()
        self.principal: Optional[str] = None
        self.clearance = PrivilegeSet.empty()
        self.subscriptions: Dict[str, str] = {}  # client id -> broker id
        self.outgoing: "queue.Queue[Frame]" = queue.Queue()
        self.closed = False
        #: ``ack: client`` state — message-id -> (client sub id, event),
        #: insertion-ordered so a dying connection dead-letters in-flight
        #: events oldest-first. Registered by the broker's delivery
        #: thread, drained by this connection's handler thread.
        self.unacked: Dict[str, Tuple[str, Event]] = {}
        self._unacked_lock = threading.Lock()
        self._delivery_ids = itertools.count(1)
        #: client id -> SUBSCRIBE parameters, kept so _cleanup can leave
        #: an orphan tombstone behind for client-ack subscriptions.
        self._sub_specs: Dict[str, dict] = {}

    def handle(self) -> None:
        sock = self.request
        try:
            if self.server.tls_context is not None:
                sock = self.server.tls_context.wrap_socket(sock, server_side=True)
                self.request = sock
        except (OSError, ssl.SSLError):
            return  # handshake failed (e.g. plaintext client)
        sock.settimeout(self.POLL_SECONDS)
        try:
            while not self.closed:
                self._flush_outgoing(sock)
                try:
                    data = sock.recv(65536)
                except TimeoutError:
                    continue
                except ssl.SSLError as error:
                    # SSL read timeouts surface as generic SSLError
                    # ("The read operation timed out"), not TimeoutError.
                    if _is_ssl_timeout(error):
                        continue
                    return
                if not data:
                    return
                self._dispatch_frames(self.parser.feed(data))
            self._flush_outgoing(sock)
        except (StompProtocolError, SelectorSyntaxError) as error:
            self._send(Frame("ERROR", {"message": str(error)}))
            self._flush_outgoing(sock)
        except OSError:
            pass  # client went away
        finally:
            self._cleanup()

    def _flush_outgoing(self, sock) -> None:
        while True:
            try:
                frame = self.outgoing.get_nowait()
            except queue.Empty:
                return
            payload = encode_frame(frame)
            sock.settimeout(5.0)
            try:
                sock.sendall(payload)
            except OSError:
                self.closed = True
                return
            finally:
                sock.settimeout(self.POLL_SECONDS)

    # -- frame dispatch --------------------------------------------------------

    def _dispatch_frames(self, frames) -> None:
        """Dispatch a parsed batch, publishing runs of SEND frames together.

        A producer that writes several SEND frames per TCP segment gets
        them published through :meth:`Broker.publish_many` — one queue
        handoff for the whole run — while every other command keeps its
        per-frame handling. Error and receipt semantics stay per frame.
        """
        pending_sends: list = []
        for frame in frames:
            if frame.command == "SEND":
                pending_sends.append(frame)
                continue
            self._flush_sends(pending_sends)
            self._dispatch(frame)
        self._flush_sends(pending_sends)

    def _flush_sends(self, frames: list) -> None:
        if not frames:
            return
        events = []
        publishable = []
        try:
            for frame in frames:
                try:
                    principal = self._require_connected()
                    events.append(frame_to_event(frame))
                    publishable.append(frame)
                except (StompProtocolError, SelectorSyntaxError) as error:
                    self._send(Frame("ERROR", {"message": str(error)}))
                    self._maybe_receipt(frame)
        finally:
            # Publish whatever converted cleanly even if a later frame
            # raised something unexpected (e.g. a malformed label URI) —
            # the per-frame dispatch this replaces had already published
            # the earlier events by that point.
            if events:
                if len(events) == 1:
                    self.server.broker.publish(events[0], publisher=principal)
                else:
                    self.server.broker.publish_many(events, publisher=principal)
                for frame in publishable:
                    self._maybe_receipt(frame)
            frames.clear()

    def _dispatch(self, frame: Frame) -> None:
        handler = {
            "CONNECT": self._on_connect,
            "STOMP": self._on_connect,
            "SEND": self._on_send,
            "SUBSCRIBE": self._on_subscribe,
            "UNSUBSCRIBE": self._on_unsubscribe,
            "ACK": self._on_ack,
            "NACK": self._on_nack,
            "DISCONNECT": self._on_disconnect,
        }.get(frame.command)
        if handler is None:
            self._send(Frame("ERROR", {"message": f"unsupported command {frame.command}"}))
            return
        try:
            handler(frame)
        except (StompProtocolError, SelectorSyntaxError) as error:
            self._send(Frame("ERROR", {"message": str(error)}))
        self._maybe_receipt(frame)

    def _on_connect(self, frame: Frame) -> None:
        login = frame.header("login", "anonymous")
        passcode = frame.header("passcode", "")
        clearance = self.server.authenticate(login, passcode)
        if clearance is None:
            self._send(Frame("ERROR", {"message": "authentication failed"}))
            self.closed = True
            return
        self.principal = login
        self.clearance = clearance
        self._send(
            Frame(
                "CONNECTED",
                {"version": "1.1", "session": f"session-{id(self) & 0xFFFF:04x}"},
            )
        )
        self.server.audit.allowed("stomp", "connect", login)

    def _require_connected(self) -> str:
        if self.principal is None:
            raise StompProtocolError("not connected; send CONNECT first")
        return self.principal

    def _on_send(self, frame: Frame) -> None:
        principal = self._require_connected()
        event = frame_to_event(frame)
        self.server.broker.publish(event, publisher=principal)

    def _on_subscribe(self, frame: Frame) -> None:
        principal = self._require_connected()
        destination = frame.require("destination")
        client_id = frame.require("id")
        if client_id in self.subscriptions:
            raise StompProtocolError(f"subscription id {client_id!r} already in use")
        selector = frame.header("selector")
        ack_mode = frame.header("ack", "auto")
        if ack_mode not in ("auto", "client"):
            raise StompProtocolError(f"unsupported ack mode {ack_mode!r}")
        integrity_header = frame.header(REQUIRE_INTEGRITY_HEADER, "")
        require_integrity = LabelSet.from_uris(
            uri for uri in integrity_header.split(",") if uri
        )

        if ack_mode == "client":
            # At-least-once: the event is registered as in flight
            # *before* the MESSAGE frame is queued, and stays registered
            # until the client ACKs it. A connection that dies first
            # dead-letters everything still in the map (see _cleanup) —
            # the frame either reaches a consumer that acknowledges it or
            # lands on the unit's DLQ; it cannot vanish with the socket.
            def deliver(event: Event, _client_id=client_id) -> None:
                message = event_to_message(event, _client_id)
                delivery_id = f"{event.event_id}.{next(self._delivery_ids)}"
                message.headers["message-id"] = delivery_id
                # The closed check and the registration are one atomic
                # step against _cleanup, which flips ``closed`` and
                # drains the map under this same lock: either this entry
                # is registered before the sweep (and the sweep
                # dead-letters it) or the connection is already closed
                # here — registering on a dead connection would mean the
                # event is never sent, never acked, never swept.
                with self._unacked_lock:
                    registered = not self.closed
                    if registered:
                        self.unacked[delivery_id] = (_client_id, event)
                if not registered:
                    self.server.dead_letter_unacked(
                        self.principal or "anonymous",
                        event,
                        "closed",
                        reason="delivered to a closed connection",
                    )
                    return
                self._send(message)

        else:

            def deliver(event: Event, _client_id=client_id) -> None:
                self._send(event_to_message(event, _client_id))

        subscription = self.server.broker.subscribe(
            destination,
            deliver,
            principal=principal,
            clearance=self.clearance,
            selector=selector,
            require_integrity=require_integrity,
        )
        self.subscriptions[client_id] = subscription.subscription_id
        self._sub_specs[client_id] = {
            "destination": destination,
            "selector": selector,
            "require_integrity": require_integrity,
            "ack": ack_mode,
        }
        if ack_mode == "client":
            # A returning consumer takes over from its tombstone — the
            # new subscription is live first, so the handover can
            # duplicate deliveries but never drop them.
            self.server.adopt_orphan(principal, destination)

    def _on_ack(self, frame: Frame) -> None:
        principal = self._require_connected()
        message_id = frame.require("message-id")
        with self._unacked_lock:
            entry = self.unacked.pop(message_id, None)
        if entry is None:
            # Expected under at-least-once: a consumer may ack after its
            # old connection's entries were already swept to the DLQ
            # (e.g. a bridge that reconnected mid-delivery). An ERROR
            # frame here would fail the client's next unrelated RECEIPT
            # wait, so record it and move on.
            self.server.audit.denied(
                "stomp",
                "ack",
                principal,
                detail=f"stale or duplicate ACK for {message_id!r} ignored",
            )

    def _on_nack(self, frame: Frame) -> None:
        """A consumer refusing an event dead-letters it immediately."""
        principal = self._require_connected()
        message_id = frame.require("message-id")
        with self._unacked_lock:
            entry = self.unacked.pop(message_id, None)
        if entry is None:
            # Same as a stale ACK: the in-flight entry was already acked
            # or dead-lettered elsewhere — nothing left to refuse.
            self.server.audit.denied(
                "stomp",
                "nack",
                principal,
                detail=f"stale or duplicate NACK for {message_id!r} ignored",
            )
            return
        _client_id, event = entry
        self.server.dead_letter_unacked(
            principal, event, message_id, reason="consumer NACK"
        )

    def _on_unsubscribe(self, frame: Frame) -> None:
        self._require_connected()
        client_id = frame.require("id")
        broker_id = self.subscriptions.pop(client_id, None)
        # A deliberate unsubscribe leaves no tombstone behind.
        self._sub_specs.pop(client_id, None)
        if broker_id is None:
            raise StompProtocolError(f"unknown subscription id {client_id!r}")
        self.server.broker.unsubscribe(broker_id)

    def _on_disconnect(self, _frame: Frame) -> None:
        self.closed = True

    def _maybe_receipt(self, frame: Frame) -> None:
        receipt = frame.header("receipt")
        if receipt is not None:
            self._send(Frame("RECEIPT", {"receipt-id": receipt}))

    # -- plumbing ------------------------------------------------------------------

    def _send(self, frame: Frame) -> None:
        """Queue a frame; the handler thread performs the socket write."""
        self.outgoing.put(frame)

    def _cleanup(self) -> None:
        # Under the lock so no delivery can observe ``closed`` False and
        # then register after the sweep below has drained the map.
        with self._unacked_lock:
            self.closed = True
        # Tombstones go up BEFORE the real subscriptions come down: an
        # event published in the gap matches the tombstone and lands on
        # the unit's DLQ instead of fanning out to nobody. Until the
        # unsubscribe below, both match — a duplicate, which the
        # at-least-once contract permits; a drop, which it does not,
        # cannot happen.
        for client_id, spec in self._sub_specs.items():
            if spec["ack"] == "client" and client_id in self.subscriptions:
                self.server.orphan_subscription(
                    self.principal or "anonymous",
                    self.clearance,
                    spec["destination"],
                    selector=spec["selector"],
                    require_integrity=spec["require_integrity"],
                )
        self._sub_specs.clear()
        for broker_id in self.subscriptions.values():
            self.server.broker.unsubscribe(broker_id)
        self.subscriptions.clear()
        with self._unacked_lock:
            in_flight = list(self.unacked.items())
            self.unacked.clear()
        for message_id, (_client_id, event) in in_flight:
            self.server.dead_letter_unacked(
                self.principal or "anonymous",
                event,
                message_id,
                reason="connection lost with message in flight",
            )


class StompServer(socketserver.ThreadingTCPServer):
    """A threaded STOMP server over an IFC broker.

    ``policy`` supplies per-login clearance: a login naming a unit gets
    the unit's (withholding-adjusted) privileges, a login naming a user
    must present the user's password. Without a policy every login is
    accepted with empty clearance — only unlabelled events flow, which is
    fail-safe.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        broker: Broker,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: Optional[Policy] = None,
        tls_context: Optional[ssl.SSLContext] = None,
        audit: Optional[AuditLog] = None,
        supervision: Optional[SupervisionPolicy] = None,
    ):
        self.broker = broker
        self.policy = policy
        self.tls_context = tls_context
        self.audit = audit if audit is not None else default_audit_log()
        #: Dead-letters events whose ``ack: client`` consumers died with
        #: the delivery in flight (same DLQ semantics as the engine's).
        self.supervisor = Supervisor(supervision)
        #: Operator-facing ledger of those dead-letter decisions.
        self.dead_letters: list = []
        self._dead_letter_lock = threading.Lock()
        #: (principal, destination) -> broker subscription id of an
        #: orphan tombstone standing in for a dead client-ack consumer.
        self._orphans: Dict[Tuple[str, str], str] = {}
        self._orphan_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _Connection)

    def dead_letter_unacked(
        self, principal: str, event: Event, message_id: str, reason: str
    ) -> None:
        """Route an unacknowledged in-flight event to the DLQ ladder."""
        dead = self.supervisor.dead_letter(
            self.broker, self.audit, principal, event, reason, attempts=1
        )
        with self._dead_letter_lock:
            self.dead_letters.append(
                {
                    "principal": principal,
                    "topic": event.topic,
                    "message_id": message_id,
                    "reason": reason,
                    "labels": event.labels.to_uris(),
                    "published": dead is not None,
                }
            )

    # -- orphan tombstones ----------------------------------------------------

    def orphan_subscription(
        self,
        principal: str,
        clearance: PrivilegeSet,
        destination: str,
        selector: Optional[str] = None,
        require_integrity: Optional[LabelSet] = None,
    ) -> None:
        """Stand in for a dead ``ack: client`` consumer.

        The tombstone subscribes with the dead consumer's principal and
        clearance (so label filtering matches exactly what the consumer
        would have seen) and dead-letters every delivery — events
        published while the consumer is being restarted elsewhere land
        on ``/_dlq.<principal>`` instead of fanning out to nobody. The
        consumer's next SUBSCRIBE to the destination adopts (drops) it.
        """
        key = (principal, destination)
        with self._orphan_lock:
            if key in self._orphans:
                return

            def tombstone(event: Event, _principal=principal) -> None:
                self.dead_letter_unacked(
                    _principal,
                    event,
                    "orphan",
                    reason="subscriber connection lost; no live consumer",
                )

            subscription = self.broker.subscribe(
                destination,
                tombstone,
                principal=principal,
                clearance=clearance,
                selector=selector,
                require_integrity=require_integrity or LabelSet(),
            )
            self._orphans[key] = subscription.subscription_id
        self.audit.denied(
            "stomp",
            "orphan",
            principal,
            detail=f"{destination}: client-ack consumer lost; "
            "dead-lettering until it resubscribes",
        )

    def adopt_orphan(self, principal: str, destination: str) -> None:
        """Drop the tombstone once a live consumer subscribed again."""
        with self._orphan_lock:
            subscription_id = self._orphans.pop((principal, destination), None)
        if subscription_id is None:
            return
        self.broker.unsubscribe(subscription_id)
        self.audit.allowed(
            "stomp",
            "adopt",
            principal,
            detail=f"{destination}: live consumer resubscribed; tombstone dropped",
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self):
        return self.server_address

    def start(self) -> "StompServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="safeweb-stomp", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None

    # -- authentication ----------------------------------------------------------

    def authenticate(self, login: str, passcode: str) -> Optional[PrivilegeSet]:
        """Resolve a login to its clearance; ``None`` means reject."""
        if self.policy is None:
            return PrivilegeSet.empty()
        document_units = self.policy.unit_names
        if login in document_units:
            return self.policy.unit(login).effective_clearance()
        user = self.policy.find_user(login)
        if user is not None:
            if not user.check_password(passcode):
                self.audit.denied("stomp", "connect", login, detail="bad passcode")
                return None
            return user.privileges
        self.audit.denied("stomp", "connect", login, detail="unknown principal")
        return None
