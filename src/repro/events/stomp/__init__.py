"""STOMP transport for the IFC event broker (paper §4.2).

The paper's broker speaks a modified STOMP — the Streaming Text Oriented
Message Protocol — extended with:

* security labels encoded as headers with special semantics
  (``x-safeweb-labels``) in SEND and MESSAGE frames;
* label-respecting matching semantics at the dispatching layer;
* unique identifiers on subscriptions;
* an SQL-92 ``selector`` header for content-based subscriptions;
* SSL support at the transport layer.

This package provides the frame codec, a threaded TCP server bridging to
an in-process :class:`~repro.events.broker.Broker`, and a client.
"""

from repro.events.stomp.frames import Frame, FrameParser, encode_frame
from repro.events.stomp.server import StompServer
from repro.events.stomp.client import StompClient
from repro.events.stomp.bridge import StompBrokerBridge

__all__ = [
    "Frame",
    "FrameParser",
    "encode_frame",
    "StompServer",
    "StompClient",
    "StompBrokerBridge",
]
