"""Engine-to-remote-broker bridge (the paper's deployment topology).

In the ECRIC deployment the broker is a separate process (Figure 4, item
1) and the event processing engine talks to it over STOMP. This bridge
gives an :class:`~repro.events.engine.EventProcessingEngine` the same
``subscribe``/``publish`` surface as the in-process
:class:`~repro.events.broker.Broker` while speaking STOMP underneath.

Two threading details mirror Figure 2:

* **publishes are queued**: unit callbacks run inside the IFC jail and
  may not touch sockets, so ``publish`` enqueues and a trusted sender
  thread (the engine's ``$SAFE=0`` STOMP client) performs the I/O;
* **deliveries arrive on the client listener thread**, which then enters
  the jail per callback exactly like local dispatch.

Clearance passed to ``subscribe`` is advisory here: the *server* resolves
the connection's principal against its own policy, so a buggy or
compromised engine host cannot claim clearance it does not have.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Dict, List, Optional

from repro.core.labels import LabelSet
from repro.core.privileges import PrivilegeSet
from repro.events.event import Event
from repro.events.stomp.client import StompClient


class _BridgeStats:
    __slots__ = ("published", "delivered", "errors")

    def __init__(self):
        self.published = 0
        self.delivered = 0
        self.errors = 0


class _BridgeSubscription:
    __slots__ = ("subscription_id", "topic", "principal", "active")

    def __init__(self, subscription_id: str, topic: str, principal: str):
        self.subscription_id = subscription_id
        self.topic = topic
        self.principal = principal
        self.active = True


class StompBrokerBridge:
    """A Broker-compatible facade over a STOMP connection.

    One bridge per unit principal: the STOMP login *is* the principal,
    which is what lets the server enforce clearance per §4.2.
    """

    def __init__(
        self,
        host: str,
        port: int,
        login: str,
        passcode: str = "",
        tls_context=None,
    ):
        self._client = StompClient(
            host, port, login=login, passcode=passcode, tls_context=tls_context
        )
        self._login = login
        self._outgoing: "queue.Queue[Optional[Event]]" = queue.Queue()
        self._sender: Optional[threading.Thread] = None
        self._subscriptions: Dict[str, _BridgeSubscription] = {}
        self.stats = _BridgeStats()

    # -- lifecycle -----------------------------------------------------------

    def connect(self) -> "StompBrokerBridge":
        self._client.connect()
        self._sender = threading.Thread(
            target=self._send_loop, name=f"safeweb-bridge-{self._login}", daemon=True
        )
        self._sender.start()
        return self

    def close(self) -> None:
        if self._sender is not None:
            self._outgoing.put(None)
            self._sender.join(5)
            self._sender = None
        self._client.disconnect()

    def drain(self, timeout: float = 5.0) -> None:
        """Block until queued publishes have hit the wire."""
        done = threading.Event()
        self._outgoing.put(done)  # type: ignore[arg-type]
        done.wait(timeout)

    # -- the Broker surface the engine uses -------------------------------------

    def subscribe(
        self,
        topic: str,
        callback: Callable[[Event], None],
        principal: str = "anonymous",
        clearance: Optional[PrivilegeSet] = None,  # resolved server-side
        selector=None,
        subscription_id: Optional[str] = None,
        require_integrity: Optional[LabelSet] = None,
    ) -> _BridgeSubscription:
        selector_text = getattr(selector, "text", selector)

        def deliver(event: Event) -> None:
            self.stats.delivered += 1
            callback(event)

        sub_id = self._client.subscribe(
            topic,
            deliver,
            selector=selector_text,
            subscription_id=subscription_id,
            require_integrity=require_integrity or LabelSet(),
        )
        subscription = _BridgeSubscription(sub_id, topic, principal)
        self._subscriptions[sub_id] = subscription
        return subscription

    def unsubscribe(self, subscription_id: str) -> None:
        subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is not None:
            subscription.active = False
            self._client.unsubscribe(subscription_id)

    def subscriptions_for(self, principal: str) -> List[_BridgeSubscription]:
        return [s for s in self._subscriptions.values() if s.principal == principal]

    def publish(self, event: Event, publisher: str = "anonymous") -> int:
        """Queue an event for transmission (jail-safe); returns 0."""
        self.stats.published += 1
        self._outgoing.put(event)
        return 0

    def __len__(self) -> int:
        return len(self._subscriptions)

    # -- internals ------------------------------------------------------------------

    def _send_loop(self) -> None:
        while True:
            item = self._outgoing.get()
            if item is None:
                return
            if isinstance(item, threading.Event):
                item.set()
                continue
            try:
                self._client.send(
                    item.topic,
                    attributes=item.attributes,
                    payload=item.payload or "",
                    labels=item.labels,
                )
            except Exception:  # noqa: BLE001 - connection loss must not kill the loop
                self.stats.errors += 1
