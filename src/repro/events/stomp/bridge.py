"""Engine-to-remote-broker bridge (the paper's deployment topology).

In the ECRIC deployment the broker is a separate process (Figure 4, item
1) and the event processing engine talks to it over STOMP. This bridge
gives an :class:`~repro.events.engine.EventProcessingEngine` the same
``subscribe``/``publish`` surface as the in-process
:class:`~repro.events.broker.Broker` while speaking STOMP underneath.

Two threading details mirror Figure 2:

* **publishes are queued**: unit callbacks run inside the IFC jail and
  may not touch sockets, so ``publish`` enqueues and a trusted sender
  thread (the engine's ``$SAFE=0`` STOMP client) performs the I/O;
* **deliveries arrive on the client listener thread**, which then enters
  the jail per callback exactly like local dispatch.

The bridge is a *long-lived link* and treats the connection as
unreliable (docs/ROBUSTNESS.md): a failed send is audited and retried
through a reconnect-with-backoff ladder that re-establishes the STOMP
session and **resubscribes every tracked subscription** before the
event is sent again; only after ``max_send_attempts`` failures is the
event parked on :attr:`StompBrokerBridge.dead_letters` (audited) — the
sender thread itself never dies, and nothing is lost silently. Sends
are receipt-confirmed so a death of the socket mid-send is detected on
the sender thread, not swallowed by the listener.

Clearance passed to ``subscribe`` is advisory here: the *server* resolves
the connection's principal against its own policy, so a buggy or
compromised engine host cannot claim clearance it does not have.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.core.audit import AuditLog, default_audit_log
from repro.core.labels import LabelSet
from repro.core.privileges import PrivilegeSet
from repro.events.event import Event
from repro.events.stomp.client import StompClient
from repro.faults import NULL_FAULTS, ChaosInjector, SimulatedCrash


class _BridgeStats:
    __slots__ = ("published", "delivered", "errors", "reconnects", "dead_lettered")

    def __init__(self):
        self.published = 0
        self.delivered = 0
        self.errors = 0
        self.reconnects = 0
        self.dead_lettered = 0


class _Batch:
    """A run of events sent back-to-back under one trailing receipt."""

    __slots__ = ("events",)

    def __init__(self, events: List[Event]):
        self.events = events


class _BridgeSubscription:
    __slots__ = ("subscription_id", "topic", "principal", "active")

    def __init__(self, subscription_id: str, topic: str, principal: str):
        self.subscription_id = subscription_id
        self.topic = topic
        self.principal = principal
        self.active = True


class StompBrokerBridge:
    """A Broker-compatible facade over a STOMP connection.

    One bridge per unit principal: the STOMP login *is* the principal,
    which is what lets the server enforce clearance per §4.2.
    """

    def __init__(
        self,
        host: str,
        port: int,
        login: str,
        passcode: str = "",
        tls_context=None,
        reconnect: bool = True,
        max_send_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        audit: Optional[AuditLog] = None,
        chaos: ChaosInjector = NULL_FAULTS,
    ):
        self._host = host
        self._port = port
        self._login = login
        self._passcode = passcode
        self._tls_context = tls_context
        self._reconnect = reconnect
        self._max_send_attempts = max(1, max_send_attempts)
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._audit = audit if audit is not None else default_audit_log()
        self._chaos = chaos
        self._client = self._new_client()
        self._outgoing: "queue.Queue[Optional[Event]]" = queue.Queue()
        self._sender: Optional[threading.Thread] = None
        self._subscriptions: Dict[str, _BridgeSubscription] = {}
        #: subscription_id -> kwargs needed to re-issue it on reconnect.
        self._subscription_specs: Dict[str, dict] = {}
        #: Events given up on after max_send_attempts (audited, kept for
        #: inspection/replay — the bridge-level dead-letter parking lot).
        self.dead_letters: List[Event] = []
        self.stats = _BridgeStats()

    # -- lifecycle -----------------------------------------------------------

    def _new_client(self) -> StompClient:
        return StompClient(
            self._host,
            self._port,
            login=self._login,
            passcode=self._passcode,
            tls_context=self._tls_context,
            chaos=self._chaos,
        )

    def connect(self) -> "StompBrokerBridge":
        """Connect (idempotent); a closed bridge reconnects cleanly."""
        if self._sender is not None:
            return self
        if not self._client.connected:
            self._client = self._new_client()
            self._chaos.hit("bridge.connect")
            self._client.connect()
        self._sender = threading.Thread(
            target=self._send_loop, name=f"safeweb-bridge-{self._login}", daemon=True
        )
        self._sender.start()
        return self

    def close(self) -> None:
        """Stop the sender and disconnect (idempotent).

        Subscription bookkeeping is cleared: a later :meth:`connect`
        starts a fresh session and callers re-subscribe, exactly like a
        gateway restart.
        """
        if self._sender is not None:
            self._outgoing.put(None)
            self._sender.join(5)
            self._sender = None
        self._client.disconnect()
        self._subscriptions.clear()
        self._subscription_specs.clear()

    def drain(self, timeout: float = 5.0) -> None:
        """Block until queued publishes were sent (or dead-lettered)."""
        done = threading.Event()
        self._outgoing.put(done)  # type: ignore[arg-type]
        done.wait(timeout)

    # -- health ---------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        """True while the link can make progress: connected, sender alive."""
        return (
            self._sender is not None
            and self._sender.is_alive()
            and self._client.connected
        )

    def probe(self) -> dict:
        """Health probe: link state + counters, cheap enough to poll."""
        return {
            "connected": self._client.connected,
            "sender_alive": self._sender is not None and self._sender.is_alive(),
            "outgoing_depth": self._outgoing.qsize(),
            "subscriptions": len(self._subscriptions),
            "published": self.stats.published,
            "delivered": self.stats.delivered,
            "errors": self.stats.errors,
            "reconnects": self.stats.reconnects,
            "dead_lettered": self.stats.dead_lettered,
        }

    def ensure_connected(self) -> bool:
        """Reconnect now if the link is down; True when healthy after."""
        if self.healthy:
            return True
        if self._sender is None:
            return False  # closed bridges stay closed; connect() restarts
        self._reestablish()
        return self.healthy

    # -- the Broker surface the engine uses -------------------------------------

    def subscribe(
        self,
        topic: str,
        callback: Callable[[Event], None],
        principal: str = "anonymous",
        clearance: Optional[PrivilegeSet] = None,  # resolved server-side
        selector=None,
        subscription_id: Optional[str] = None,
        require_integrity: Optional[LabelSet] = None,
        ack: str = "auto",
    ) -> _BridgeSubscription:
        """Subscribe through the link.

        With ``ack="client"`` the *callback* receives ``(event,
        message_id)`` and must call :meth:`ack` when it has durably
        finished with the event — an unacked delivery dead-letters at
        the server if this side dies (the cluster's at-least-once hop).
        """
        selector_text = getattr(selector, "text", selector)
        integrity = require_integrity or LabelSet()

        if ack == "client":

            def deliver(event: Event, message_id: str = "") -> None:
                self.stats.delivered += 1
                callback(event, message_id)

        else:

            def deliver(event: Event) -> None:
                self.stats.delivered += 1
                callback(event)

        sub_id = self._client.subscribe(
            topic,
            deliver,
            selector=selector_text,
            subscription_id=subscription_id,
            require_integrity=integrity,
            ack=ack,
        )
        subscription = _BridgeSubscription(sub_id, topic, principal)
        self._subscriptions[sub_id] = subscription
        self._subscription_specs[sub_id] = {
            "topic": topic,
            "deliver": deliver,
            "selector": selector_text,
            "require_integrity": integrity,
            "ack": ack,
        }
        return subscription

    def ack(self, message_id: str) -> None:
        """Acknowledge a ``ack="client"`` delivery (non-blocking)."""
        self._client.ack(message_id)

    def nack(self, message_id: str) -> None:
        """Refuse a delivery; the server dead-letters it immediately."""
        self._client.nack(message_id)

    def unsubscribe(self, subscription_id: str) -> None:
        subscription = self._subscriptions.pop(subscription_id, None)
        self._subscription_specs.pop(subscription_id, None)
        if subscription is not None:
            subscription.active = False
            self._client.unsubscribe(subscription_id)

    def subscriptions_for(self, principal: str) -> List[_BridgeSubscription]:
        return [s for s in self._subscriptions.values() if s.principal == principal]

    def publish(self, event: Event, publisher: str = "anonymous") -> int:
        """Queue an event for transmission (jail-safe); returns 0."""
        self.stats.published += 1
        self._outgoing.put(event)
        return 0

    def publish_many(self, events, publisher: str = "anonymous") -> int:
        """Queue a batch; the sender writes the run back-to-back.

        Only the final SEND of the run asks for a receipt — the server
        processes a connection's frames in order, so one confirmation
        covers the whole batch, and the back-to-back frames coalesce
        into :meth:`Broker.publish_many` runs on the server side.
        """
        batch = list(events)
        if not batch:
            return 0
        self.stats.published += len(batch)
        self._outgoing.put(_Batch(batch))
        return 0

    def __len__(self) -> int:
        return len(self._subscriptions)

    # -- internals ------------------------------------------------------------------

    def _send_loop(self) -> None:
        while True:
            item = self._outgoing.get()
            if item is None:
                return
            if isinstance(item, threading.Event):
                item.set()
                continue
            if isinstance(item, _Batch):
                self._send_batch_with_retry(item.events)
                continue
            self._send_with_retry(item)

    def _send_with_retry(self, event: Event) -> bool:
        """Send one event; survive link failures.

        Each failed attempt is audited; between attempts the session is
        re-established (reconnect + resubscribe) with exponential
        backoff. After the attempt budget the event is parked on
        :attr:`dead_letters` with a final audit record — the loop keeps
        draining either way.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                self._chaos.hit("bridge.send")
                self._client.send(
                    event.topic,
                    attributes=event.attributes,
                    payload=event.payload or "",
                    labels=event.labels,
                    receipt=True,
                )
                return True
            except SimulatedCrash:
                raise
            except Exception as error:  # noqa: BLE001 - the sender must keep draining
                self.stats.errors += 1
                self._audit.denied(
                    "bridge",
                    "send",
                    self._login,
                    labels=event.labels,
                    detail=f"send to {event.topic} failed (attempt {attempt}): {error!r}",
                )
                if attempt >= self._max_send_attempts or not self._reconnect:
                    self.stats.dead_lettered += 1
                    self.dead_letters.append(event)
                    self._audit.denied(
                        "bridge",
                        "dead_letter",
                        self._login,
                        labels=event.labels,
                        detail=(
                            f"event for {event.topic} parked after "
                            f"{attempt} attempt(s)"
                        ),
                    )
                    return False
                self._backoff(attempt)
                self._reestablish()

    def _send_batch_with_retry(self, events: List[Event]) -> bool:
        """Send a batch; survive link failures as one unit.

        The receipt rides the last frame only, so a mid-batch link death
        retries the whole run — the far side may see leading events
        twice, which the cluster's at-least-once contract permits.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                self._chaos.hit("bridge.send")
                last = len(events) - 1
                for index, event in enumerate(events):
                    self._client.send(
                        event.topic,
                        attributes=event.attributes,
                        payload=event.payload or "",
                        labels=event.labels,
                        receipt=index == last,
                    )
                return True
            except SimulatedCrash:
                raise
            except Exception as error:  # noqa: BLE001 - the sender must keep draining
                self.stats.errors += 1
                self._audit.denied(
                    "bridge",
                    "send",
                    self._login,
                    detail=f"batch of {len(events)} failed (attempt {attempt}): {error!r}",
                )
                if attempt >= self._max_send_attempts or not self._reconnect:
                    for event in events:
                        self.stats.dead_lettered += 1
                        self.dead_letters.append(event)
                    self._audit.denied(
                        "bridge",
                        "dead_letter",
                        self._login,
                        detail=f"batch of {len(events)} parked after {attempt} attempt(s)",
                    )
                    return False
                self._backoff(attempt)
                self._reestablish()

    def _backoff(self, attempt: int) -> None:
        if self._backoff_base <= 0:
            return
        time.sleep(min(self._backoff_base * (2 ** (attempt - 1)), self._backoff_max))

    def _reestablish(self) -> None:
        """Tear down the dead client, connect a fresh one, resubscribe.

        Best-effort: a failure here is audited and left for the next
        send attempt's backoff round to retry.
        """
        try:
            self._client.disconnect()
        except Exception:  # noqa: BLE001 - the old session is already dead
            pass
        try:
            self._chaos.hit("bridge.connect")
            client = self._new_client()
            client.connect()
            for sub_id, spec in self._subscription_specs.items():
                client.subscribe(
                    spec["topic"],
                    spec["deliver"],
                    selector=spec["selector"],
                    subscription_id=sub_id,
                    require_integrity=spec["require_integrity"],
                    ack=spec.get("ack", "auto"),
                )
            self._client = client
            self.stats.reconnects += 1
            self._audit.allowed(
                "bridge",
                "reconnect",
                self._login,
                detail=f"session re-established; {len(self._subscription_specs)} "
                f"subscription(s) restored",
            )
        except SimulatedCrash:
            raise
        except Exception as error:  # noqa: BLE001 - retried by the next backoff round
            self._audit.denied(
                "bridge",
                "reconnect",
                self._login,
                detail=f"reconnect failed: {error!r}",
            )
