"""Per-unit execution lanes over a shared worker pool (paper §4.3, scaled).

The seed engine delivers every event synchronously on the publisher's
thread, so one slow unit stalls the whole pipeline and multi-unit
deployments cannot overlap independent work. This module supplies the
actor-style runtime the parallel engine multiplexes units onto:

* every unit gets one :class:`ExecutionLane` — a bounded FIFO mailbox.
  A lane is owned by at most one worker at a time, so a unit's callbacks
  run strictly in arrival order and never race each other (or the
  unit's labelled store);
* lanes are multiplexed over a small shared pool of worker threads.
  Workers claim a ready lane, drain up to :attr:`LaneScheduler.batch`
  tasks from it in one mailbox lock hold (batched dispatch), then hand
  the lane back if it still holds work;
* mailboxes are bounded. When one fills, the configured backpressure
  policy applies: ``"block"`` makes the producer wait for space (the
  default — lossless, but a cyclic unit graph whose mailboxes all fill
  can deadlock the pool, see docs/ENGINE.md), ``"drop"`` discards the
  newest task and records the loss in the audit log and in
  :attr:`EngineStats.dropped`;
* security context is carried **per task, not per thread**: the
  scheduler stores ``(principal, callback, event)`` and the engine's
  task runner re-establishes the LabelContext and (for unjailed
  principals) jail containment around every single callback, exactly as
  the synchronous path does. Worker threads keep no ambient state
  between tasks.

:class:`EngineStats` is the counter block benchmarks and the drain logic
read; all counters are exact (every mutation goes through the stats
object's internal lock).
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import SafeWebError

#: A unit of work: (principal, isolated callback, event). Kept as a plain
#: tuple so enqueueing from inside the IFC jail allocates nothing that
#: could trip the audit hook.
Task = Tuple[object, Callable, object]

#: Sentinel a worker interprets as "exit".
_STOP = object()

#: How a full mailbox treats a new task.
BLOCK = "block"
DROP = "drop"

BACKPRESSURE_POLICIES = (BLOCK, DROP)


class EngineStats:
    """Counters for the parallel engine (exact, cheap to read).

    ``dispatched`` counts callbacks actually executed (synchronous mode
    increments it too, so seed-vs-laned comparisons line up), ``queued``
    counts tasks accepted into a mailbox, ``dropped`` counts tasks
    discarded by the ``"drop"`` backpressure policy, ``callback_errors``
    counts unit exceptions (security violations and plain bugs alike),
    and ``max_lane_depth`` high-watermarks the deepest mailbox seen.
    Supervised engines (repro.events.supervision) additionally count
    ``retries`` (failed callback re-invocations), ``restarts``
    (one-for-one unit restarts) and ``dead_lettered`` (events published
    to a ``/_dlq.<unit>`` topic); all three stay 0 without supervision.

    Counters are bumped from many threads (workers, producers, lanes),
    and both the engine's drain loop and the equivalence tests rely on
    them being *exact* — a CPython ``+=`` is load/add/store and can lose
    increments under preemption — so every mutation goes through
    :meth:`bump` under one internal lock.
    """

    __slots__ = (
        "dispatched",
        "queued",
        "dropped",
        "callback_errors",
        "max_lane_depth",
        "batches",
        "retries",
        "restarts",
        "dead_lettered",
        "_lock",
    )

    def __init__(self) -> None:
        self.dispatched = 0
        self.queued = 0
        self.dropped = 0
        self.callback_errors = 0
        self.max_lane_depth = 0
        #: Lane activations: one batch = one mailbox drain by a worker.
        self.batches = 0
        self.retries = 0
        self.restarts = 0
        self.dead_lettered = 0
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def record_depth(self, depth: int) -> None:
        with self._lock:
            self.queued += 1
            if depth > self.max_lane_depth:
                self.max_lane_depth = depth

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "dispatched": self.dispatched,
                "queued": self.queued,
                "dropped": self.dropped,
                "callback_errors": self.callback_errors,
                "max_lane_depth": self.max_lane_depth,
                "batches": self.batches,
                "retries": self.retries,
                "restarts": self.restarts,
                "dead_lettered": self.dead_lettered,
            }


class ExecutionLane:
    """One unit's serial mailbox.

    The ``scheduled`` flag is the single-owner guarantee: a lane is on
    the ready queue or owned by exactly one worker while it is True, so
    two workers can never execute one unit's callbacks concurrently.
    """

    __slots__ = ("name", "mailbox", "capacity", "scheduled", "closed", "condition")

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.mailbox: deque = deque()
        self.capacity = capacity
        self.scheduled = False
        self.closed = False
        self.condition = threading.Condition()

    @property
    def depth(self) -> int:
        return len(self.mailbox)


class LaneScheduler:
    """Multiplexes per-unit lanes over a bounded worker pool."""

    def __init__(
        self,
        workers: int,
        run_task: Callable[[Task], None],
        stats: EngineStats,
        mailbox_capacity: int = 1024,
        backpressure: str = BLOCK,
        batch: int = 32,
        on_drop: Optional[Callable[[str, Task, str], None]] = None,
        name: str = "safeweb-lane",
    ):
        if workers < 1:
            raise SafeWebError("a lane scheduler needs at least one worker")
        if mailbox_capacity < 1:
            raise SafeWebError("mailbox_capacity must be at least 1")
        if backpressure not in BACKPRESSURE_POLICIES:
            raise SafeWebError(
                f"unknown backpressure policy {backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        self.workers = workers
        self.mailbox_capacity = mailbox_capacity
        self.backpressure = backpressure
        self.batch = batch
        self._run_task = run_task
        self._stats = stats
        self._on_drop = on_drop
        self._lanes: Dict[str, ExecutionLane] = {}
        self._lanes_lock = threading.Lock()
        self._ready: "queue.SimpleQueue[object]" = queue.SimpleQueue()
        #: queued-but-not-finished task count; drain() waits for zero.
        self._pending = 0
        self._idle = threading.Condition()
        self._stopped = False
        self._threads: List[threading.Thread] = [
            threading.Thread(target=self._worker, name=f"{name}-{index}", daemon=True)
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- lane management ------------------------------------------------------

    def lane(self, name: str) -> ExecutionLane:
        """The (created-on-demand) lane for *name*."""
        with self._lanes_lock:
            lane = self._lanes.get(name)
            if lane is None or lane.closed:
                # A closed lane belongs to an unregistered unit; a new
                # registration under the same principal gets a fresh one
                # (the old lane still drains whatever it had accepted).
                lane = ExecutionLane(name, self.mailbox_capacity)
                self._lanes[name] = lane
            return lane

    def lane_depths(self) -> Dict[str, int]:
        with self._lanes_lock:
            return {name: lane.depth for name, lane in self._lanes.items()}

    # -- producer side --------------------------------------------------------

    def submit(self, lane: ExecutionLane, task: Task) -> bool:
        """Enqueue *task* on *lane*; returns False when dropped.

        Blocks while the mailbox is full under the ``"block"`` policy.
        Raises :class:`SafeWebError` after :meth:`stop`.
        """
        with lane.condition:
            if self._stopped:
                raise SafeWebError(
                    f"lane {lane.name!r} is closed; the engine has been stopped"
                )
            if lane.closed:
                # The unit has been unregistered; a delivery that was
                # already in flight when the subscription went away is
                # dropped (and audited), not raised into the publisher.
                self._stats.bump("dropped")
                if self._on_drop is not None:
                    self._on_drop(lane.name, task, "unit unregistered")
                return False
            if len(lane.mailbox) >= lane.capacity:
                if self.backpressure == DROP:
                    self._stats.bump("dropped")
                    if self._on_drop is not None:
                        self._on_drop(lane.name, task, "mailbox full")
                    return False
                while len(lane.mailbox) >= lane.capacity:
                    lane.condition.wait()
                    if self._stopped:
                        raise SafeWebError(
                            f"lane {lane.name!r} closed while waiting for mailbox space"
                        )
                    if lane.closed:
                        # The unit was unregistered while we waited for
                        # space: same contract as the non-blocking path —
                        # drop with audit, never raise into the publisher.
                        self._stats.bump("dropped")
                        if self._on_drop is not None:
                            self._on_drop(lane.name, task, "unit unregistered")
                        return False
            # Count the task as pending *before* it becomes poppable, so
            # drain() can never observe a momentarily-negative balance.
            with self._idle:
                self._pending += 1
            lane.mailbox.append(task)
            self._stats.record_depth(len(lane.mailbox))
            schedule = not lane.scheduled
            if schedule:
                lane.scheduled = True
        if schedule:
            self._ready.put(lane)
        return True

    # -- worker side ----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._ready.get()
            if item is _STOP:
                return
            lane: ExecutionLane = item  # type: ignore[assignment]
            with lane.condition:
                batch = [
                    lane.mailbox.popleft()
                    for _ in range(min(self.batch, len(lane.mailbox)))
                ]
                lane.condition.notify_all()  # space freed for blocked producers
            self._stats.bump("batches")
            run = self._run_task
            stats = self._stats
            for task in batch:
                # run_task (the engine's callback runner) contains its
                # own error handling; anything escaping it is a harness
                # bug that still must not kill the worker.
                try:
                    run(task)
                except Exception:  # noqa: BLE001 - lanes must survive unit bugs
                    stats.bump("callback_errors")
            with lane.condition:
                # A closed lane (unregistered unit) still drains what it
                # already accepted — it only refuses new submissions.
                if lane.mailbox:
                    self._ready.put(lane)
                else:
                    lane.scheduled = False
                    lane.condition.notify_all()  # wake close_lane waiters
            with self._idle:
                self._pending -= len(batch)
                if self._pending <= 0:
                    self._idle.notify_all()

    # -- lifecycle ------------------------------------------------------------

    @property
    def idle(self) -> bool:
        with self._idle:
            return self._pending == 0

    def drain(self, timeout: float = 10.0) -> bool:
        """Block until every queued task has finished; False on timeout."""
        with self._idle:
            return self._idle.wait_for(lambda: self._pending == 0, timeout)

    def stop(self, timeout: float = 10.0) -> None:
        """Drain, then shut the worker pool down.

        Graceful: queued work completes first. Afterwards ``submit``
        raises; a task that raced the shutdown flag into a mailbox is
        swept out afterwards with a drop audit record — either way no
        task is silently accepted into a dead pool.
        """
        self.drain(timeout)
        self._stopped = True
        with self._lanes_lock:
            lanes = list(self._lanes.values())
        for lane in lanes:
            with lane.condition:
                lane.condition.notify_all()  # release blocked producers
        for _ in self._threads:
            self._ready.put(_STOP)
        for thread in self._threads:
            thread.join(timeout)
        # A submit that passed the _stopped check concurrently with the
        # flag flip may have appended after the workers left: sweep any
        # residue so nothing is lost *silently* and drain() stays sound.
        for lane in lanes:
            with lane.condition:
                leftovers = len(lane.mailbox)
                while lane.mailbox:
                    task = lane.mailbox.popleft()
                    self._stats.bump("dropped")
                    if self._on_drop is not None:
                        self._on_drop(lane.name, task, "scheduler stopped")
            if leftovers:
                with self._idle:
                    self._pending -= leftovers
                    if self._pending <= 0:
                        self._idle.notify_all()

    def close_lane(self, name: str, timeout: float = 10.0) -> bool:
        """Close a unit's lane (unregister) and wait for it to empty.

        New submissions to a closed lane are dropped (with audit);
        already-accepted tasks still run — this blocks until they have,
        so the caller can safely tear the unit down afterwards. When
        called *from a pool worker* (a unit unregistering itself, or a
        peer, mid-callback) the wait is skipped — the waiting thread is
        the one the lane needs to make progress — and any queued tasks
        simply finish after the current callback returns. Returns False
        when the lane was not (observed) empty.
        """
        with self._lanes_lock:
            lane = self._lanes.get(name)
        if lane is None:
            return True
        on_worker = threading.current_thread() in self._threads
        with lane.condition:
            lane.closed = True
            lane.condition.notify_all()
            if on_worker:
                return not lane.mailbox and not lane.scheduled
            return lane.condition.wait_for(
                lambda: not lane.mailbox and not lane.scheduled, timeout
            )
