"""The event processing engine (paper §4.3).

The engine is the runtime environment for units. Its key functions:

1. **control of unit execution** — every callback runs under a
   :class:`~repro.events.context.LabelContext` initialised to the labels
   of the event being processed, and (for non-privileged units) inside
   the IFC jail with a scope-isolated callback clone;
2. **privilege assignment** — unit principals come from the policy file;
   subscription clearance, publish-time declassification and endorsement
   are all checked against them;
3. **restriction of access to the environment** — privileged units
   (importers/exporters) run outside the jail but may have clearance for
   chosen labels withheld so they can never receive those events.

Execution modes
---------------

``workers=0`` (the default) is the seed behaviour and the executable
reference: every delivery runs synchronously on the publisher's thread,
cascades nest, and exceptions propagate to the publisher when
``raise_callback_errors`` is set.

``workers=N`` turns on the **parallel engine**: each unit gets a serial
execution lane (per-unit FIFO, a unit's callbacks never race its own
labelled store) multiplexed over N shared worker threads
(:mod:`repro.events.lanes`). The broker still matches topics, selectors
and clearance on the publishing thread — enforcement is unchanged — but
the matched callback is handed to the unit's lane instead of being
invoked inline. LabelContext and jail containment are established *per
task* on whichever worker runs it, so label tracking and isolation are
identical to the synchronous mode; the property suite
(tests/property/test_parallel_engine.py) pins the equivalence. See
docs/ENGINE.md for the ordering guarantees and backpressure knobs.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

from repro.core.audit import AuditLog, default_audit_log
from repro.core.labels import Label, LabelSet
from repro.core.policy import Policy
from repro.core.principals import UnitPrincipal
from repro.events.broker import Broker
from repro.events.context import LabelContext, current_labels
from repro.events.event import Event
from repro.events.jail import Jail, isolate_callback, _state as _jail_state
from repro.events.lanes import BLOCK, EngineStats, LaneScheduler
from repro.events.store import LabeledStore
from repro.events.supervision import (
    ALREADY_SUSPENDED,
    RESTART,
    SUSPEND,
    SupervisionPolicy,
    Supervisor,
    UnitSupervisor,
)
from repro.events.unit import Unit
from repro.exceptions import (
    DeclassificationError,
    EndorsementError,
    SafeWebError,
    SecurityViolation,
)
from repro.faults import NULL_FAULTS, ChaosInjector


class _UnitServices:
    """Engine-side handle injected into each unit.

    Deep-copying a unit (scope isolation) must *not* duplicate the
    services — the store and broker wiring are intentionally shared, like
    the paper's explicitly-tainted store — so ``__deepcopy__`` returns
    the instance itself.
    """

    def __init__(self, engine: "EventProcessingEngine", unit: Unit, principal: UnitPrincipal):
        self._engine = engine
        self._unit = unit
        self.principal = principal
        self.store = LabeledStore(principal, audit=engine.audit)
        #: Set by unregister: a detached unit (or a jail-isolated clone
        #: of one that kept this handle) can no longer reach the engine.
        self.closed = False

    def __deepcopy__(self, memo) -> "_UnitServices":
        return self

    def close(self) -> None:
        self.closed = True

    def _guard_open(self) -> None:
        if self.closed:
            raise SafeWebError(
                f"unit {self.principal.name!r} has been unregistered from the engine"
            )

    def register_subscription(
        self,
        topic: str,
        handler,
        selector: Optional[str],
        require_integrity: Optional[LabelSet] = None,
    ) -> None:
        self._guard_open()
        self._engine._register_subscription(
            self, topic, handler, selector, require_integrity
        )

    def publish(self, topic, attributes, payload, add, remove, remove_all) -> Event:
        self._guard_open()
        return self._engine._publish_from_unit(
            self.principal, topic, attributes, payload, add, remove, remove_all
        )


class EventProcessingEngine:
    """Runs units against a broker under IFC enforcement."""

    def __init__(
        self,
        broker: Optional[Broker] = None,
        policy: Optional[Policy] = None,
        audit: Optional[AuditLog] = None,
        isolation: bool = True,
        raise_callback_errors: bool = False,
        workers: int = 0,
        mailbox_capacity: int = 1024,
        backpressure: str = BLOCK,
        supervision: Optional[SupervisionPolicy | Supervisor] = None,
        chaos: ChaosInjector = NULL_FAULTS,
    ):
        self.broker = broker if broker is not None else Broker()
        self.policy = policy
        self.audit = audit if audit is not None else default_audit_log()
        self.isolation = isolation
        self.raise_callback_errors = raise_callback_errors
        self._jail = Jail()
        self._units: Dict[str, Unit] = {}
        self._services: Dict[str, _UnitServices] = {}
        self._lock = threading.Lock()
        self.stats = EngineStats()
        # ``supervision`` wraps every callback in the retry / restart /
        # dead-letter ladder (docs/ROBUSTNESS.md); default off preserves
        # the seed semantics exactly. Accepts a policy (the engine builds
        # the Supervisor) or a ready Supervisor instance (tests inject
        # subclasses). ``chaos`` is the fault-injection hook; hot paths
        # skip instrumentation entirely when it is NULL_FAULTS.
        if supervision is None:
            self.supervisor: Optional[Supervisor] = None
        elif isinstance(supervision, Supervisor):
            self.supervisor = supervision
        else:
            self.supervisor = Supervisor(supervision)
        self._chaos = chaos
        self._chaos_active = chaos is not NULL_FAULTS
        # Per-engine UnitSupervisor cache: Supervisor.unit() is stable
        # per name, so a plain dict lookup on the delivery fast path
        # avoids a method call per event (bench-supervision target).
        self._unit_supervisors: Dict[str, UnitSupervisor] = {}
        self._scheduler: Optional[LaneScheduler] = None
        if workers:
            self._scheduler = LaneScheduler(
                workers,
                self._run_task,
                self.stats,
                mailbox_capacity=mailbox_capacity,
                backpressure=backpressure,
                on_drop=self._audit_drop,
            )

    @property
    def parallel(self) -> bool:
        """True when deliveries run on execution lanes, not the publisher."""
        return self._scheduler is not None

    # -- unit lifecycle ------------------------------------------------------

    def register(self, unit: Unit, principal: Optional[UnitPrincipal] = None) -> Unit:
        """Attach *unit*, resolve its principal and run its ``setup``."""
        if principal is None:
            if self.policy is None:
                raise SafeWebError(
                    f"no policy configured; pass a principal for unit {unit.name!r}"
                )
            principal = self.policy.unit(unit.name)
        with self._lock:
            if unit.name in self._units:
                raise SafeWebError(f"unit {unit.name!r} already registered")
            services = _UnitServices(self, unit, principal)
            self._units[unit.name] = unit
            self._services[unit.name] = services
        unit.attach(services)
        unit.setup()
        self.audit.allowed("engine", "register", principal.name)
        return unit

    def unregister(self, unit_name: str) -> None:
        """Detach a unit: subscriptions, services handle and lane all go.

        Subscriptions are removed under the *principal* name they were
        registered with (which the policy may decouple from the unit
        name), the unit's ``teardown`` hook runs, and its services
        handle is closed — so neither the unit nor any jail-isolated
        clone that retained the handle can publish through the engine
        again.
        """
        with self._lock:
            unit = self._units.pop(unit_name, None)
            services = self._services.pop(unit_name, None)
        principal_name = services.principal.name if services is not None else unit_name
        for subscription in self.broker.subscriptions_for(principal_name):
            self.broker.unsubscribe(subscription.subscription_id)
        if self._scheduler is not None:
            # Already-accepted deliveries finish before the unit is torn
            # down; in-flight submissions racing the unsubscribe above
            # are dropped with an audit record, never raised.
            self._scheduler.close_lane(principal_name)
        if unit is not None:
            try:
                unit.teardown()
            except Exception as error:  # noqa: BLE001 - buggy teardown must not block revocation
                self.audit.denied(
                    "engine",
                    "teardown",
                    principal_name,
                    detail=f"teardown error: {error!r}",
                )
            finally:
                unit._services = None
        if services is not None:
            services.close()
            self.audit.allowed("engine", "unregister", principal_name)

    @property
    def unit_names(self) -> List[str]:
        with self._lock:
            return sorted(self._units)

    def store_of(self, unit_name: str) -> LabeledStore:
        """The unit's store (tests and importers peek through this)."""
        with self._lock:
            return self._services[unit_name].store

    # -- parallel lifecycle ---------------------------------------------------

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait until every queued delivery (and its cascade) completed.

        Synchronous engines are always drained. With a threaded broker
        the loop alternates between the broker queue and the lanes until
        neither produced new work — a worker callback may publish into
        the broker, whose dispatcher then refills the lanes.
        """
        if self._scheduler is None:
            if self.broker is not None:
                self.broker.drain(timeout)
            return True
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self._scheduler.idle
            # Stability check: one full round (broker → lanes → broker
            # again) during which nothing was accepted or executed. The
            # trailing broker drain matters: a callback may publish into
            # a threaded broker just before finishing, and the event sits
            # in the dispatcher queue while the lanes are momentarily
            # idle — the second drain forces that handoff to happen (and
            # show up in the counters) before quiescence is declared.
            before = (self.stats.queued, self.stats.dispatched)
            self.broker.drain(remaining)
            if not self._scheduler.drain(max(deadline - time.monotonic(), 0.001)):
                return False
            self.broker.drain(max(deadline - time.monotonic(), 0.001))
            after = (self.stats.queued, self.stats.dispatched)
            if after == before and self._scheduler.idle:
                return True

    def stop(self, timeout: float = 10.0) -> None:
        """Gracefully drain the lanes and shut the worker pool down."""
        if self._scheduler is not None:
            self.drain(timeout)
            self._scheduler.stop(timeout)

    def lane_depths(self) -> Dict[str, int]:
        """Current mailbox depth per unit lane (empty when synchronous)."""
        if self._scheduler is None:
            return {}
        return self._scheduler.lane_depths()

    # -- ingress for non-unit producers ----------------------------------------

    def publish(
        self,
        topic: str,
        attributes: Optional[dict] = None,
        payload: Optional[str] = None,
        labels: LabelSet | Iterable[Label | str] = (),
        publisher: str = "external",
    ) -> Event:
        """Inject an externally produced, pre-labelled event."""
        event = Event(topic, attributes, payload, labels)
        self.broker.publish(event, publisher=publisher)
        return event

    def publish_batch(
        self,
        events: Iterable[Event | dict],
        publisher: str = "external",
    ) -> List[Event]:
        """Inject a batch of pre-labelled events through one broker call.

        Items are :class:`Event` instances or mappings with ``topic`` /
        ``attributes`` / ``payload`` / ``labels`` keys. Importers
        (backend ingest pipelines) use this so a burst of externally
        produced records pays one queue handoff instead of one per event.
        """
        batch: List[Event] = [
            event
            if isinstance(event, Event)
            else Event(
                event["topic"],
                event.get("attributes"),
                event.get("payload"),
                event.get("labels", ()),
            )
            for event in events
        ]
        self.broker.publish_many(batch, publisher=publisher)
        return batch

    # -- internal: subscription wiring ---------------------------------------------

    def _register_subscription(
        self,
        services: _UnitServices,
        topic: str,
        handler,
        selector: Optional[str],
        require_integrity: Optional[LabelSet] = None,
    ) -> None:
        principal = services.principal
        if self.isolation and not principal.privileged:
            callback = isolate_callback(handler)
        else:
            callback = handler

        # A chaos fault at the deliver point raises on the delivering
        # thread, where the broker's containment audits it as a denied
        # delivery — the same observable outcome in both engine modes.
        chaos = self._chaos if self._chaos_active else None
        deliver_point = f"engine.deliver:{principal.name}"

        if self._scheduler is not None:
            # Parallel mode: the broker's matching and clearance checks
            # still run on the publishing thread; the matched callback is
            # handed to the unit's serial lane. The security context
            # travels inside the task (principal + event), re-established
            # by _run_task on whichever worker executes it.
            lane = self._scheduler.lane(principal.name)
            submit = self._scheduler.submit

            if chaos is None:

                def deliver(event: Event) -> None:
                    submit(lane, (principal, callback, event))

            else:

                def deliver(event: Event) -> None:
                    chaos.hit(deliver_point)
                    submit(lane, (principal, callback, event))

        elif chaos is None:

            def deliver(event: Event) -> None:
                self._run_callback(principal, callback, event)

        else:

            def deliver(event: Event) -> None:
                chaos.hit(deliver_point)
                self._run_callback(principal, callback, event)

        self.broker.subscribe(
            topic,
            deliver,
            principal=principal.name,
            clearance=principal.effective_clearance(),
            selector=selector,
            require_integrity=require_integrity,
        )

    def _run_task(self, task) -> None:
        """Execute one lane task on a worker thread.

        The LabelContext and jail containment are established inside
        :meth:`_run_callback`, per task — workers carry no ambient
        security state between tasks. Exceptions are audited by
        :meth:`_run_callback` and swallowed here: in parallel mode there
        is no publisher stack to propagate them to, and a raising unit
        must never take a shared worker down (``raise_callback_errors``
        only changes synchronous-mode behaviour).
        """
        principal, callback, event = task
        if self._chaos_active:
            try:
                self._chaos.hit(f"lane.execute:{principal.name}")
            except Exception as error:  # noqa: BLE001 - injected lane fault
                # The task never reached the callback: audit the loss and
                # (when supervised) dead-letter it, so a lane-level fault
                # is no more silent than a callback failure.
                self.stats.bump("callback_errors")
                self.audit.denied(
                    "engine",
                    "lane",
                    principal.name,
                    labels=event.labels,
                    detail=f"lane execution fault: {error!r}",
                )
                if self.supervisor is not None:
                    self._dead_letter(principal, event, repr(error), attempts=0)
                return
        try:
            self._run_callback(principal, callback, event)
        except Exception:  # noqa: BLE001 - audited + counted in _run_callback
            pass

    def _audit_drop(self, lane_name: str, task, reason: str) -> None:
        _principal, _callback, event = task
        self.audit.denied(
            "engine",
            "enqueue",
            lane_name,
            labels=event.labels,
            detail=f"event dropped: {reason}",
        )

    def _run_callback(self, principal: UnitPrincipal, callback, event: Event) -> None:
        self.stats.bump("dispatched")
        supervisor = self.supervisor
        if supervisor is not None:
            # Fault-free fast path: the first attempt runs inline here —
            # the retry / dead-letter / restart ladder only costs a call
            # frame once a callback actually fails (bench-supervision's
            # ≤5 % overhead target).
            unit_sup = self._unit_supervisors.get(principal.name)
            if unit_sup is None:
                unit_sup = supervisor.unit(principal.name)
                self._unit_supervisors[principal.name] = unit_sup
            if unit_sup.suspended:
                self._dead_letter(principal, event, "unit suspended", attempts=0)
                return
            try:
                self._invoke(principal, callback, event)
            except SecurityViolation as violation:
                self._audit_security_violation(principal, event, violation)
            except Exception as error:  # noqa: BLE001 - supervised containment
                self._run_supervised(principal, callback, event, unit_sup, error)
            return
        try:
            self._invoke(principal, callback, event)
        except SecurityViolation as violation:
            self.stats.bump("callback_errors")
            self.audit.denied(
                "engine",
                "callback",
                principal.name,
                labels=event.labels,
                detail=f"{type(violation).__name__}: {violation}",
            )
            if self.raise_callback_errors:
                raise
        except Exception as error:  # noqa: BLE001 - unit bugs must not kill the engine
            self.stats.bump("callback_errors")
            self.audit.denied(
                "engine",
                "callback",
                principal.name,
                labels=event.labels,
                detail=f"unit error: {error!r}",
            )
            if self.raise_callback_errors:
                raise

    def _audit_security_violation(
        self, principal: UnitPrincipal, event: Event, violation: SecurityViolation
    ) -> None:
        """Security violations are deterministic policy denials: audited,
        never retried, never dead-lettered."""
        self.stats.bump("callback_errors")
        self.audit.denied(
            "engine",
            "callback",
            principal.name,
            labels=event.labels,
            detail=f"{type(violation).__name__}: {violation}",
        )

    def _invoke(self, principal: UnitPrincipal, callback, event: Event) -> None:
        """One callback invocation with its full security context.

        The LabelContext and (for unjailed principals) jail containment
        are entered *here*, per invocation — a supervised retry re-runs
        this whole method, so every attempt starts from a fresh ambient
        label set and a fresh containment scope.
        """
        if self._chaos_active:
            self._chaos.hit(f"engine.callback.before:{principal.name}")
        with LabelContext(event.labels):
            if self.isolation and not principal.privileged:
                with self._jail.contained():
                    callback(event)
            elif principal.privileged:
                # A privileged unit may be invoked synchronously from a
                # jailed publisher; its own execution is legitimately
                # unjailed (the paper's $SAFE=0 units).
                with self._lifted_jail():
                    callback(event)
            else:
                callback(event)
        if self._chaos_active:
            self._chaos.hit(f"engine.callback.after:{principal.name}")

    def _run_supervised(
        self,
        principal: UnitPrincipal,
        callback,
        event: Event,
        unit_sup: UnitSupervisor,
        error: Exception,
    ) -> None:
        """The supervised delivery ladder: retry → dead-letter → restart.

        Entered from :meth:`_run_callback` with the first attempt's
        failure already in hand. Exhausts the policy's retry budget
        (each retry re-enters the LabelContext and jail from scratch via
        :meth:`_invoke`), then dead-letters the event under its own
        labels and applies one-for-one restart bookkeeping to the unit.
        Security violations on a retry are deterministic policy denials:
        audited, never retried further, never dead-lettered.
        SimulatedCrash is a BaseException and always propagates —
        supervision must not survive a "process death".
        """
        supervisor = self.supervisor
        attempts = 1
        while True:
            self.stats.bump("callback_errors")
            self.audit.denied(
                "engine",
                "callback",
                principal.name,
                labels=event.labels,
                detail=f"unit error (attempt {attempts}): {error!r}",
            )
            if supervisor.retryable(error) and attempts <= supervisor.policy.retry_budget:
                self.stats.bump("retries")
                unit_sup.sleep_before_retry(attempts)
                attempts += 1
                try:
                    self._invoke(principal, callback, event)
                    return
                except SecurityViolation as violation:
                    self._audit_security_violation(principal, event, violation)
                    return
                except Exception as retry_error:  # noqa: BLE001 - supervised containment
                    error = retry_error
                    continue
            self._dead_letter(principal, event, repr(error), attempts=attempts)
            self._handle_unit_failure(unit_sup, principal)
            return

    def _dead_letter(
        self, principal: UnitPrincipal, event: Event, reason: str, attempts: int
    ) -> None:
        dead = self.supervisor.dead_letter(
            self.broker, self.audit, principal.name, event, reason, attempts
        )
        if dead is not None:
            self.stats.bump("dead_lettered")

    def _handle_unit_failure(self, unit_sup, principal: UnitPrincipal) -> None:
        decision = unit_sup.note_failure()
        if decision == RESTART:
            self.stats.bump("restarts")
            unit_sup.sleep_before_restart()
            if self._restart_unit(principal.name):
                self.audit.allowed(
                    "supervisor",
                    "restart",
                    principal.name,
                    detail=f"one-for-one restart #{unit_sup.restart_count}",
                )
            else:
                self.audit.denied(
                    "supervisor",
                    "restart",
                    principal.name,
                    detail="restart failed; unit left as-is",
                )
        elif decision == SUSPEND:
            self.audit.denied(
                "supervisor",
                "suspend",
                principal.name,
                detail=(
                    f"exceeded {unit_sup.policy.max_restarts} restarts in "
                    f"{unit_sup.policy.restart_window}s; deliveries now dead-letter"
                ),
            )
        elif decision == ALREADY_SUSPENDED:  # pragma: no cover - racing failures
            pass

    def _restart_unit(self, principal_name: str) -> bool:
        """One-for-one restart: run ``teardown``, register the unit's
        subscriptions afresh via ``setup``, then drop the old ones.
        Re-registration rebuilds the jail-isolated callback clones, so a
        restarted unit starts from the unit instance's current state
        with fresh subscription wiring. The unit's lane (if any) stays
        open — queued deliveries continue to the restarted unit in FIFO
        order.

        The new subscriptions go live *before* the old ones are removed:
        an event published concurrently with the swap may be delivered
        through both (at-least-once), but never falls into a window with
        no matching subscription (silent loss). Unsubscribe-first had
        exactly that hole under the laned engine.
        """
        with self._lock:
            unit = None
            for name, services in self._services.items():
                if services.principal.name == principal_name:
                    unit = self._units.get(name)
                    break
        if unit is None:
            return False
        stale = [
            subscription.subscription_id
            for subscription in self.broker.subscriptions_for(principal_name)
        ]
        try:
            unit.teardown()
        except Exception as error:  # noqa: BLE001 - teardown bugs must not block restart
            self.audit.denied(
                "engine",
                "teardown",
                principal_name,
                detail=f"teardown error during restart: {error!r}",
            )
        try:
            unit.setup()
        except Exception as error:  # noqa: BLE001 - restart failure is reported, not raised
            # The old subscriptions are still live — a unit whose setup
            # died keeps its previous wiring rather than going deaf.
            self.audit.denied(
                "engine",
                "setup",
                principal_name,
                detail=f"setup error during restart: {error!r}",
            )
            return False
        for subscription_id in stale:
            self.broker.unsubscribe(subscription_id)
        return True

    @contextmanager
    def _lifted_jail(self):
        previous = getattr(_jail_state, "contained", 0)
        _jail_state.contained = 0
        try:
            yield
        finally:
            _jail_state.contained = previous

    # -- internal: label-checked publish ----------------------------------------------

    def _publish_from_unit(
        self,
        principal: UnitPrincipal,
        topic: str,
        attributes: Optional[dict],
        payload: Optional[str],
        add: Iterable[Label | str],
        remove: Iterable[Label | str],
        remove_all: bool,
    ) -> Event:
        ambient = current_labels()
        add_set = LabelSet(add)
        remove_set = ambient if remove_all else LabelSet(remove)

        effective_removals = ambient.intersection(remove_set)
        missing = principal.privileges.missing_declassification(effective_removals)
        if missing:
            self.audit.denied(
                "engine",
                "declassify",
                principal.name,
                labels=LabelSet(missing),
                detail=f"publish to {topic}",
            )
            raise DeclassificationError(
                f"unit {principal.name!r} lacks declassification for "
                f"{sorted(label.uri for label in missing)}"
            )
        if add_set.integrity and not principal.privileges.can_endorse(add_set):
            self.audit.denied(
                "engine",
                "endorse",
                principal.name,
                labels=LabelSet(add_set.integrity),
                detail=f"publish to {topic}",
            )
            raise EndorsementError(
                f"unit {principal.name!r} lacks endorsement for "
                f"{sorted(label.uri for label in add_set.integrity)}"
            )

        labels = ambient.difference(remove_set).union(add_set)
        event = Event(topic, attributes, payload, labels)
        self.audit.allowed("engine", "publish", principal.name, labels=labels)
        self.broker.publish(event, publisher=principal.name)
        return event
