"""The event processing engine (paper §4.3).

The engine is the runtime environment for units. Its key functions:

1. **control of unit execution** — every callback runs under a
   :class:`~repro.events.context.LabelContext` initialised to the labels
   of the event being processed, and (for non-privileged units) inside
   the IFC jail with a scope-isolated callback clone;
2. **privilege assignment** — unit principals come from the policy file;
   subscription clearance, publish-time declassification and endorsement
   are all checked against them;
3. **restriction of access to the environment** — privileged units
   (importers/exporters) run outside the jail but may have clearance for
   chosen labels withheld so they can never receive those events.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

from repro.core.audit import AuditLog, default_audit_log
from repro.core.labels import Label, LabelSet
from repro.core.policy import Policy
from repro.core.principals import UnitPrincipal
from repro.events.broker import Broker
from repro.events.context import LabelContext, current_labels
from repro.events.event import Event
from repro.events.jail import Jail, isolate_callback, _state as _jail_state
from repro.events.store import LabeledStore
from repro.events.unit import Unit
from repro.exceptions import (
    DeclassificationError,
    EndorsementError,
    SafeWebError,
    SecurityViolation,
)


class _UnitServices:
    """Engine-side handle injected into each unit.

    Deep-copying a unit (scope isolation) must *not* duplicate the
    services — the store and broker wiring are intentionally shared, like
    the paper's explicitly-tainted store — so ``__deepcopy__`` returns
    the instance itself.
    """

    def __init__(self, engine: "EventProcessingEngine", unit: Unit, principal: UnitPrincipal):
        self._engine = engine
        self._unit = unit
        self.principal = principal
        self.store = LabeledStore(principal, audit=engine.audit)

    def __deepcopy__(self, memo) -> "_UnitServices":
        return self

    def register_subscription(
        self,
        topic: str,
        handler,
        selector: Optional[str],
        require_integrity: Optional[LabelSet] = None,
    ) -> None:
        self._engine._register_subscription(
            self, topic, handler, selector, require_integrity
        )

    def publish(self, topic, attributes, payload, add, remove, remove_all) -> Event:
        return self._engine._publish_from_unit(
            self.principal, topic, attributes, payload, add, remove, remove_all
        )


class EventProcessingEngine:
    """Runs units against a broker under IFC enforcement."""

    def __init__(
        self,
        broker: Optional[Broker] = None,
        policy: Optional[Policy] = None,
        audit: Optional[AuditLog] = None,
        isolation: bool = True,
        raise_callback_errors: bool = False,
    ):
        self.broker = broker if broker is not None else Broker()
        self.policy = policy
        self.audit = audit if audit is not None else default_audit_log()
        self.isolation = isolation
        self.raise_callback_errors = raise_callback_errors
        self._jail = Jail()
        self._units: Dict[str, Unit] = {}
        self._services: Dict[str, _UnitServices] = {}
        self._lock = threading.Lock()

    # -- unit lifecycle ------------------------------------------------------

    def register(self, unit: Unit, principal: Optional[UnitPrincipal] = None) -> Unit:
        """Attach *unit*, resolve its principal and run its ``setup``."""
        if principal is None:
            if self.policy is None:
                raise SafeWebError(
                    f"no policy configured; pass a principal for unit {unit.name!r}"
                )
            principal = self.policy.unit(unit.name)
        with self._lock:
            if unit.name in self._units:
                raise SafeWebError(f"unit {unit.name!r} already registered")
            services = _UnitServices(self, unit, principal)
            self._units[unit.name] = unit
            self._services[unit.name] = services
        unit.attach(services)
        unit.setup()
        self.audit.allowed("engine", "register", principal.name)
        return unit

    def unregister(self, unit_name: str) -> None:
        with self._lock:
            self._units.pop(unit_name, None)
            self._services.pop(unit_name, None)
        for subscription in self.broker.subscriptions_for(unit_name):
            self.broker.unsubscribe(subscription.subscription_id)

    @property
    def unit_names(self) -> List[str]:
        with self._lock:
            return sorted(self._units)

    def store_of(self, unit_name: str) -> LabeledStore:
        """The unit's store (tests and importers peek through this)."""
        with self._lock:
            return self._services[unit_name].store

    # -- ingress for non-unit producers ----------------------------------------

    def publish(
        self,
        topic: str,
        attributes: Optional[dict] = None,
        payload: Optional[str] = None,
        labels: LabelSet | Iterable[Label | str] = (),
        publisher: str = "external",
    ) -> Event:
        """Inject an externally produced, pre-labelled event."""
        event = Event(topic, attributes, payload, labels)
        self.broker.publish(event, publisher=publisher)
        return event

    def publish_batch(
        self,
        events: Iterable[Event | dict],
        publisher: str = "external",
    ) -> List[Event]:
        """Inject a batch of pre-labelled events through one broker call.

        Items are :class:`Event` instances or mappings with ``topic`` /
        ``attributes`` / ``payload`` / ``labels`` keys. Importers
        (backend ingest pipelines) use this so a burst of externally
        produced records pays one queue handoff instead of one per event.
        """
        batch: List[Event] = [
            event
            if isinstance(event, Event)
            else Event(
                event["topic"],
                event.get("attributes"),
                event.get("payload"),
                event.get("labels", ()),
            )
            for event in events
        ]
        self.broker.publish_many(batch, publisher=publisher)
        return batch

    # -- internal: subscription wiring ---------------------------------------------

    def _register_subscription(
        self,
        services: _UnitServices,
        topic: str,
        handler,
        selector: Optional[str],
        require_integrity: Optional[LabelSet] = None,
    ) -> None:
        principal = services.principal
        if self.isolation and not principal.privileged:
            callback = isolate_callback(handler)
        else:
            callback = handler

        def deliver(event: Event) -> None:
            self._run_callback(principal, callback, event)

        self.broker.subscribe(
            topic,
            deliver,
            principal=principal.name,
            clearance=principal.effective_clearance(),
            selector=selector,
            require_integrity=require_integrity,
        )

    def _run_callback(self, principal: UnitPrincipal, callback, event: Event) -> None:
        try:
            with LabelContext(event.labels):
                if self.isolation and not principal.privileged:
                    with self._jail.contained():
                        callback(event)
                elif principal.privileged:
                    # A privileged unit may be invoked synchronously from a
                    # jailed publisher; its own execution is legitimately
                    # unjailed (the paper's $SAFE=0 units).
                    with self._lifted_jail():
                        callback(event)
                else:
                    callback(event)
        except SecurityViolation as violation:
            self.audit.denied(
                "engine",
                "callback",
                principal.name,
                labels=event.labels,
                detail=f"{type(violation).__name__}: {violation}",
            )
            if self.raise_callback_errors:
                raise
        except Exception as error:  # noqa: BLE001 - unit bugs must not kill the engine
            self.audit.denied(
                "engine",
                "callback",
                principal.name,
                labels=event.labels,
                detail=f"unit error: {error!r}",
            )
            if self.raise_callback_errors:
                raise

    @contextmanager
    def _lifted_jail(self):
        previous = getattr(_jail_state, "contained", 0)
        _jail_state.contained = 0
        try:
            yield
        finally:
            _jail_state.contained = previous

    # -- internal: label-checked publish ----------------------------------------------

    def _publish_from_unit(
        self,
        principal: UnitPrincipal,
        topic: str,
        attributes: Optional[dict],
        payload: Optional[str],
        add: Iterable[Label | str],
        remove: Iterable[Label | str],
        remove_all: bool,
    ) -> Event:
        ambient = current_labels()
        add_set = LabelSet(add)
        remove_set = ambient if remove_all else LabelSet(remove)

        effective_removals = ambient.intersection(remove_set)
        missing = principal.privileges.missing_declassification(effective_removals)
        if missing:
            self.audit.denied(
                "engine",
                "declassify",
                principal.name,
                labels=LabelSet(missing),
                detail=f"publish to {topic}",
            )
            raise DeclassificationError(
                f"unit {principal.name!r} lacks declassification for "
                f"{sorted(label.uri for label in missing)}"
            )
        if add_set.integrity and not principal.privileges.can_endorse(add_set):
            self.audit.denied(
                "engine",
                "endorse",
                principal.name,
                labels=LabelSet(add_set.integrity),
                detail=f"publish to {topic}",
            )
            raise EndorsementError(
                f"unit {principal.name!r} lacks endorsement for "
                f"{sorted(label.uri for label in add_set.integrity)}"
            )

        labels = ambient.difference(remove_set).union(add_set)
        event = Event(topic, attributes, payload, labels)
        self.audit.allowed("engine", "publish", principal.name, labels=labels)
        self.broker.publish(event, publisher=principal.name)
        return event
