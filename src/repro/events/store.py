"""The unit-specific labelled key-value store (paper §4.3).

Stateful units keep state between callbacks through a key-value store
whose keys carry label sets:

* **reading** a key widens the ambient ``_LABELS`` of the running
  callback with the key's labels — state is as confidential as what was
  stored under it;
* **writing** a key stamps the current ambient labels onto it, with
  optional add/remove sets mirroring the publish call; removal requires
  the unit's declassification privilege.

Values are deep-copied on both paths so a jailed callback can never
retain a shared mutable reference that would bypass label tracking.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.audit import AuditLog, default_audit_log
from repro.core.labels import Label, LabelSet
from repro.core.principals import UnitPrincipal
from repro.events.context import combine_ambient, current_labels
from repro.exceptions import DeclassificationError, EndorsementError

_MISSING = object()


class LabeledStore:
    """Per-unit key-value store with per-key label sets."""

    def __init__(self, principal: UnitPrincipal, audit: Optional[AuditLog] = None):
        self._principal = principal
        self._audit = audit if audit is not None else default_audit_log()
        self._lock = threading.Lock()
        self._entries: Dict[str, Tuple[Any, LabelSet]] = {}

    # -- reads -------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Read a value; the key's labels join the ambient label set."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            return default
        value, labels = entry
        self._taint_ambient(labels)
        return copy.deepcopy(value)

    def labels_for(self, key: str) -> LabelSet:
        """The labels on *key* without reading the value (no ambient widening)."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            return LabelSet()
        return entry[1]

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- writes --------------------------------------------------------------

    def set(
        self,
        key: str,
        value: Any,
        add: Iterable[Label | str] = (),
        remove: Iterable[Label | str] = (),
    ) -> LabelSet:
        """Write a value; ambient labels (±add/remove) become the key's labels.

        Removing confidentiality labels requires declassification
        privilege; adding integrity labels requires endorsement — the
        same rules as the engine's publish call (§4.3).
        """
        labels = self._checked_labels(current_labels(), add, remove, operation="store.set")
        with self._lock:
            self._entries[key] = (copy.deepcopy(value), labels)
        return labels

    def delete(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- internals ------------------------------------------------------------

    def _taint_ambient(self, labels: LabelSet) -> None:
        try:
            combine_ambient(labels)
        except RuntimeError:
            # Outside a callback (e.g. engine bootstrap); nothing to widen.
            pass

    def _checked_labels(
        self,
        base: LabelSet,
        add: Iterable[Label | str],
        remove: Iterable[Label | str],
        operation: str,
    ) -> LabelSet:
        """Apply ±add/remove to *base* with the engine's publish semantics.

        Declassification privilege is demanded only for the *effective*
        removals — labels actually present on the base set — and removal
        is applied before addition (difference-then-union), so a label
        listed in both ``add`` and ``remove`` survives, exactly as it
        does on the engine's publish path (§4.3). The seed demanded
        privilege for the full remove set (denying writes over labels
        the key never carried) and computed union-then-difference
        (stripping add∩remove), so the two enforcement points disagreed.
        """
        add_set = LabelSet(add)
        remove_set = LabelSet(remove)
        privileges = self._principal.privileges
        effective_removals = base.intersection(remove_set)
        missing = privileges.missing_declassification(effective_removals)
        if missing:
            self._audit.denied(
                "store",
                operation,
                self._principal.name,
                labels=LabelSet(missing),
                detail="declassification denied",
            )
            raise DeclassificationError(
                f"unit {self._principal.name!r} lacks declassification for "
                f"{sorted(label.uri for label in missing)}"
            )
        if add_set.integrity and not privileges.can_endorse(add_set):
            self._audit.denied(
                "store",
                operation,
                self._principal.name,
                labels=LabelSet(add_set.integrity),
                detail="endorsement denied",
            )
            raise EndorsementError(
                f"unit {self._principal.name!r} lacks endorsement for "
                f"{sorted(label.uri for label in add_set.integrity)}"
            )
        return base.difference(remove_set).union(add_set)
