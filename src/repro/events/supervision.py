"""Unit supervision: restart policies, retry budgets, dead-letter topics
and circuit breakers (the robustness layer; see docs/ROBUSTNESS.md).

SafeWeb's enforcement story assumes the pipeline keeps running — but a
buggy unit callback, a sick storage backend or a flapping link must not
silently lose labelled events. This module supplies the Erlang-style
machinery the engine wires around every supervised callback:

* :class:`SupervisionPolicy` — the knobs: per-event retry budget with
  exponential backoff, one-for-one unit restarts bounded by
  max-restarts-per-window, and whether exhausted events dead-letter;
* :class:`UnitSupervisor` — per-unit bookkeeping (failure window,
  suspension state, backoff sleeps);
* :class:`Supervisor` — the engine-side coordinator that owns the unit
  supervisors and publishes **dead-letter events**: topic
  ``/_dlq.<unit>``, carrying the failed event's payload and attributes
  plus failure metadata (``dlq_unit``, ``dlq_topic``, ``dlq_reason``,
  ``dlq_attempts``) under the *original event's labels* — so inspecting
  a unit's dead letters requires the same clearance as receiving its
  events, and the broker's ordinary label checks gate the DLQ;
* :class:`CircuitBreaker` — a closed → open → half-open state machine
  guarding calls into a backend; every state transition is audited.

The contract the property suite (tests/property/test_supervision.py)
pins: under injected faults, every delivered event is **observed** by
the unit, **dead-lettered** with its labels intact, or **audited as
denied** — never silently lost — and the synchronous and laned engines
reach the same outcome under the same fault schedule.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, TYPE_CHECKING

from repro.core.audit import AuditLog
from repro.events.event import Event
from repro.exceptions import CircuitOpenError, SafeWebError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.principals import UnitPrincipal

#: Dead-letter topics are ``/_dlq.<unit>`` — a single path segment, so a
#: DLQ subscription names exactly one unit's dead letters.
DLQ_PREFIX = "/_dlq."


def dlq_topic(unit_name: str) -> str:
    """The dead-letter topic for *unit_name*."""
    return DLQ_PREFIX + unit_name


def is_dlq_topic(topic: str) -> bool:
    return topic.startswith(DLQ_PREFIX)


class SupervisionPolicy:
    """The restart/retry/dead-letter knobs for a supervised engine.

    ``retry_budget`` is the number of *re*-invocations after the first
    failure (0 = fail straight to the dead-letter topic). Retries sleep
    ``retry_backoff * 2**(attempt-1)`` seconds, capped at
    ``backoff_max``; unit restarts back off the same way on
    ``restart_backoff``. A unit that needs more than ``max_restarts``
    restarts within ``restart_window`` seconds is **suspended**: its
    subscriptions stay live, but every subsequent delivery dead-letters
    immediately (audited), so nothing is ever dropped without a trace.
    """

    __slots__ = (
        "retry_budget",
        "retry_backoff",
        "max_restarts",
        "restart_window",
        "restart_backoff",
        "backoff_max",
        "dead_letter",
    )

    def __init__(
        self,
        retry_budget: int = 2,
        retry_backoff: float = 0.0,
        max_restarts: int = 3,
        restart_window: float = 30.0,
        restart_backoff: float = 0.0,
        backoff_max: float = 1.0,
        dead_letter: bool = True,
    ):
        if retry_budget < 0:
            raise SafeWebError("retry_budget must be >= 0")
        if max_restarts < 0:
            raise SafeWebError("max_restarts must be >= 0")
        if restart_window <= 0:
            raise SafeWebError("restart_window must be positive")
        self.retry_budget = retry_budget
        self.retry_backoff = retry_backoff
        self.max_restarts = max_restarts
        self.restart_window = restart_window
        self.restart_backoff = restart_backoff
        self.backoff_max = backoff_max
        self.dead_letter = dead_letter

    def backoff(self, base: float, attempt: int) -> float:
        """Exponential backoff for the *attempt*-th retry/restart (1-based)."""
        if base <= 0:
            return 0.0
        return min(base * (2 ** (attempt - 1)), self.backoff_max)


#: Decisions note_failure can return.
RESTART = "restart"
SUSPEND = "suspend"
ALREADY_SUSPENDED = "suspended"


class UnitSupervisor:
    """Per-unit failure bookkeeping (one-for-one supervision).

    The hot path (a successful delivery) touches only plain attribute
    reads; the failure path takes the lock to keep the restart window
    exact under concurrent lanes.
    """

    __slots__ = ("name", "policy", "suspended", "restart_count", "_restarts", "_clock", "_lock")

    def __init__(self, name: str, policy: SupervisionPolicy, clock: Callable[[], float]):
        self.name = name
        self.policy = policy
        #: True once the unit exceeded max_restarts/window; deliveries
        #: dead-letter directly from then on.
        self.suspended = False
        self.restart_count = 0
        self._restarts: Deque[float] = deque()
        self._clock = clock
        self._lock = threading.Lock()

    def note_failure(self) -> str:
        """Record an exhausted delivery; decide restart vs suspend."""
        with self._lock:
            if self.suspended:
                return ALREADY_SUSPENDED
            now = self._clock()
            horizon = now - self.policy.restart_window
            restarts = self._restarts
            while restarts and restarts[0] < horizon:
                restarts.popleft()
            if len(restarts) >= self.policy.max_restarts:
                self.suspended = True
                return SUSPEND
            restarts.append(now)
            self.restart_count += 1
            return RESTART

    def sleep_before_retry(self, attempt: int) -> None:
        delay = self.policy.backoff(self.policy.retry_backoff, attempt)
        if delay:
            time.sleep(delay)

    def sleep_before_restart(self) -> None:
        delay = self.policy.backoff(self.policy.restart_backoff, max(self.restart_count, 1))
        if delay:
            time.sleep(delay)


class Supervisor:
    """Engine-side supervision coordinator.

    Owns one :class:`UnitSupervisor` per principal and the dead-letter
    publishing path. The engine calls :meth:`dead_letter` with the
    failed event after the retry budget is spent (or immediately, for
    non-retryable failures such as :class:`CircuitOpenError` and
    deliveries to a suspended unit); the dead-letter event is published
    through the engine's own broker under the original labels.

    Subclass and override :meth:`publish_dead_letter` to route dead
    letters elsewhere — the property suite's "deliberately lossy
    supervisor" does exactly that to prove the suite detects loss.
    """

    def __init__(
        self,
        policy: Optional[SupervisionPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy if policy is not None else SupervisionPolicy()
        self._clock = clock
        self._units: Dict[str, UnitSupervisor] = {}
        self._lock = threading.Lock()

    def unit(self, name: str) -> UnitSupervisor:
        supervisor = self._units.get(name)
        if supervisor is None:
            with self._lock:
                supervisor = self._units.get(name)
                if supervisor is None:
                    supervisor = UnitSupervisor(name, self.policy, self._clock)
                    self._units[name] = supervisor
        return supervisor

    def retryable(self, error: Exception) -> bool:
        """Whether spending retry budget on *error* can help.

        An open circuit breaker fails every call until its reset timeout
        elapses — immediate retries would just burn the budget — so
        :class:`CircuitOpenError` goes straight to the dead-letter
        topic (load shedding, not silent loss).
        """
        return not isinstance(error, CircuitOpenError)

    def dead_letter(
        self,
        broker,
        audit: AuditLog,
        principal_name: str,
        event: Event,
        reason: str,
        attempts: int,
    ) -> Optional[Event]:
        """Dead-letter *event* for *principal_name*; returns the DLQ event.

        Returns ``None`` without publishing when dead-lettering is
        disabled by policy or the event already sits on a DLQ topic (a
        failing DLQ consumer must not loop) — in both cases the decision
        is audited as denied, so the event is still never *silently*
        lost.
        """
        if not self.policy.dead_letter or is_dlq_topic(event.topic):
            audit.denied(
                "supervisor",
                "dead_letter",
                principal_name,
                labels=event.labels,
                detail=f"dead-letter suppressed for {event.topic}: {reason}",
            )
            return None
        attributes = dict(event.attributes)
        attributes.update(
            {
                "dlq_unit": principal_name,
                "dlq_topic": event.topic,
                "dlq_reason": reason,
                "dlq_attempts": str(attempts),
            }
        )
        dead = Event(dlq_topic(principal_name), attributes, event.payload, event.labels)
        audit.allowed(
            "supervisor",
            "dead_letter",
            principal_name,
            labels=event.labels,
            detail=f"{event.topic} -> {dead.topic} after {attempts} attempt(s): {reason}",
        )
        self.publish_dead_letter(broker, dead, principal_name)
        return dead

    def publish_dead_letter(self, broker, dead: Event, principal_name: str) -> None:
        """Hand the dead-letter event to the broker (override point)."""
        broker.publish(dead, publisher=f"supervisor:{principal_name}")


#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """A closed → open → half-open breaker guarding backend calls.

    * **closed** — calls pass through; ``failure_threshold`` consecutive
      failures trip the breaker open;
    * **open** — calls raise :class:`CircuitOpenError` immediately (no
      backend contact) until ``reset_timeout`` seconds have passed;
    * **half-open** — one probe call is let through: success closes the
      breaker, failure re-opens it (and restarts the timeout).

    Every state transition is written to the audit log under component
    ``"breaker"`` — breaker flaps are security-relevant operational
    events in a pipeline whose units hold declassification privileges.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        audit: Optional[AuditLog] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise SafeWebError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise SafeWebError("reset_timeout must be >= 0")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._audit = audit
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        #: True while a half-open probe is in flight.
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        if self._state == OPEN and self._clock() - self._opened_at >= self.reset_timeout:
            self._transition(HALF_OPEN, "reset timeout elapsed")
        return self._state

    def _transition(self, state: str, why: str) -> None:
        previous, self._state = self._state, state
        if state != OPEN:
            self._probing = False
        if self._audit is not None and previous != state:
            record = self._audit.denied if state == OPEN else self._audit.allowed
            record("breaker", "transition", self.name, detail=f"{previous} -> {state}: {why}")

    def call(self, operation: Callable, *args, **kwargs):
        """Run *operation* under the breaker."""
        self.before_call()
        try:
            result = operation(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def before_call(self) -> None:
        """Admission check: raises :class:`CircuitOpenError` when open."""
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return
            if state == HALF_OPEN and not self._probing:
                self._probing = True  # exactly one probe at a time
                return
            raise CircuitOpenError(
                f"circuit {self.name!r} is {state}; call rejected", breaker=self.name
            )

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state == HALF_OPEN:
                self._transition(CLOSED, "half-open probe succeeded")
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(OPEN, "half-open probe failed")
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._transition(
                    OPEN, f"{self._failures} consecutive failure(s)"
                )
