"""Event processing units (paper §4.3, Listing 1).

A unit is one or more classes implementing the business logic of the
application. Units register subscriptions during :meth:`Unit.setup` and
communicate exclusively through labelled events and the labelled
key-value store. The Python DSL mirrors the paper's Ruby one::

    class DailyReport(Unit):
        def setup(self):
            self.subscribe("/patient_report", self.on_report, selector="type = 'cancer'")
            self.subscribe("/next_day", self.on_next_day)

        def on_report(self, event):
            patients = self.store.get("patient_list", [])
            patients.append(event["patient_id"])
            self.store.set("patient_list", patients)

        def on_next_day(self, event):
            patients = self.store.get("patient_list", [])
            self.publish(
                "/daily_report",
                payload=",".join(patients),
                remove_all=True,                      # :remove => LABELS
                add=["label:conf:ecric.org.uk/patient_list"],
            )
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Optional

from repro.core.labels import Label, LabelSet
from repro.events.context import current_labels
from repro.events.event import Event
from repro.exceptions import SafeWebError


class Unit:
    """Base class for event processing units."""

    #: Override to decouple the unit's policy name from the class name.
    unit_name: Optional[str] = None

    def __init__(self):
        self._services = None

    # -- engine wiring -------------------------------------------------------

    @property
    def name(self) -> str:
        if self.unit_name:
            return self.unit_name
        return _snake_case(type(self).__name__)

    def attach(self, services) -> None:
        """Called by the engine before :meth:`setup`."""
        self._services = services

    def setup(self) -> None:
        """Override to register subscriptions; default registers nothing."""

    def teardown(self) -> None:
        """Called by the engine during unregister, before detachment.

        Runs after the unit's subscriptions are removed but while the
        services handle is still open, so the hook can flush state; once
        it returns the engine detaches ``_services`` and closes the
        handle — the unit (and any isolated clone of it) can no longer
        publish or subscribe.
        """

    # -- the unit-facing API ----------------------------------------------------

    def subscribe(
        self,
        topic: str,
        handler: Optional[Callable[[Event], None]] = None,
        selector: Optional[str] = None,
        require_integrity: Iterable[Label | str] = (),
    ):
        """Register *handler* for *topic*; usable directly or as a decorator.

        ``require_integrity`` lists integrity labels every delivered event
        must carry — the §4.1 dual of clearance: it keeps low-integrity
        data *out* of a component that only trusts endorsed inputs.
        """
        self._require_services()
        integrity = LabelSet(require_integrity)
        if handler is None:

            def decorator(func: Callable[[Event], None]):
                self._services.register_subscription(topic, func, selector, integrity)
                return func

            return decorator
        self._services.register_subscription(topic, handler, selector, integrity)
        return handler

    def publish(
        self,
        topic: str,
        attributes: Optional[dict] = None,
        payload: Optional[str] = None,
        add: Iterable[Label | str] = (),
        remove: Iterable[Label | str] = (),
        remove_all: bool = False,
    ) -> Event:
        """Publish an event carrying the ambient labels (±add/remove).

        ``remove_all=True`` is the paper's ``:remove => _LABELS`` idiom:
        strip every current ambient label (declassification privilege
        over all of them required) before applying ``add``.
        """
        self._require_services()
        return self._services.publish(topic, attributes, payload, add, remove, remove_all)

    @property
    def store(self):
        """The unit's labelled key-value store."""
        self._require_services()
        return self._services.store

    @property
    def labels(self) -> LabelSet:
        """The ambient ``_LABELS`` of the currently running callback."""
        return current_labels()

    @property
    def principal(self):
        """The unit's policy principal (privileged units self-check with it)."""
        self._require_services()
        return self._services.principal

    def _require_services(self) -> None:
        if self._services is None:
            raise SafeWebError(
                f"unit {self.name!r} is not registered with an engine"
            )


def unit_from_function(
    topic: str,
    selector: Optional[str] = None,
    name: Optional[str] = None,
) -> Callable[[Callable], Unit]:
    """Build a single-subscription unit from a function.

    >>> @unit_from_function("/patient_report", selector="type = 'cancer'")
    ... def count_reports(unit, event):
    ...     unit.store.set("count", unit.store.get("count", 0) + 1)

    The decorated name is bound to a ready-to-register :class:`Unit`
    instance whose policy name defaults to the function name.
    """

    def decorator(func: Callable) -> Unit:
        class _FunctionUnit(Unit):
            unit_name = name or func.__name__

            def setup(self) -> None:
                self.subscribe(topic, self._handle, selector=selector)

            def _handle(self, event: Event) -> None:
                func(self, event)

        _FunctionUnit.__name__ = f"FunctionUnit_{func.__name__}"
        return _FunctionUnit()

    return decorator


def _snake_case(name: str) -> str:
    return re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", name).lower()
