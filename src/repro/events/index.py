"""Topic subscription index: a segment trie with wildcard nodes (§4.2).

The broker's reference matcher, :func:`repro.events.broker.match_topic`,
compares one pattern against one topic in O(segments). With N
subscriptions a publish therefore costs O(N · segments). This module
replaces that linear scan with a trie keyed by topic segment so a
publish visits only the nodes reachable from the event's topic —
O(segments) for the common exact-topic case, independent of N.

Pattern language (identical to :func:`match_topic`):

* a literal segment matches itself;
* ``*`` matches exactly one segment of any value;
* a **trailing** ``#`` matches one or more remaining segments;
* a pattern whose raw string equals the topic always matches — which is
  only observable for degenerate patterns with a non-final ``#``
  (``/#/a``), since every other pattern already matches itself
  segment-wise. Such patterns live in a side table keyed by their raw
  string rather than in the trie.

Values are opaque to the index; the broker stores
:class:`~repro.events.broker.Subscription` objects keyed by their
subscription id. The trie itself is not synchronised — the broker calls
it under its own lock.
"""

from __future__ import annotations

from typing import Dict, Generic, List, Optional, Tuple, TypeVar

V = TypeVar("V")

#: Segment wildcards, named for readability at call sites.
ONE_SEGMENT = "*"
MANY_SEGMENTS = "#"


def split_topic(topic: str) -> Tuple[str, ...]:
    """Split a topic or pattern exactly like the reference matcher."""
    return tuple(topic.strip("/").split("/"))


class _TrieNode(Generic[V]):
    __slots__ = ("children", "star", "terminal", "many")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode[V]"] = {}
        self.star: Optional["_TrieNode[V]"] = None
        #: Values whose pattern ends exactly at this node.
        self.terminal: Dict[str, V] = {}
        #: Values whose pattern ends with ``#`` anchored at this node
        #: (matching one *or more* further segments).
        self.many: Dict[str, V] = {}

    def is_empty(self) -> bool:
        return not (self.children or self.star or self.terminal or self.many)


class TopicTrie(Generic[V]):
    """A wildcard-aware subscription index over topic patterns."""

    def __init__(self) -> None:
        self._root: _TrieNode[V] = _TrieNode()
        #: Patterns with a non-final ``#`` match only their own raw string.
        self._degenerate: Dict[str, Dict[str, V]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- mutation ----------------------------------------------------------

    def add(
        self,
        pattern: str,
        key: str,
        value: V,
        segments: Optional[Tuple[str, ...]] = None,
    ) -> None:
        """Index *value* under *pattern*; *key* must be unique per entry.

        Callers that already hold the pattern pre-split (subscriptions
        store their segments) pass *segments* to skip re-splitting.
        """
        if segments is None:
            segments = split_topic(pattern)
        if MANY_SEGMENTS in segments[:-1]:
            self._degenerate.setdefault(pattern, {})[key] = value
            self._size += 1
            return
        trailing_many = segments[-1] == MANY_SEGMENTS
        if trailing_many:
            segments = segments[:-1]
        node = self._root
        for segment in segments:
            if segment == ONE_SEGMENT:
                if node.star is None:
                    node.star = _TrieNode()
                node = node.star
            else:
                child = node.children.get(segment)
                if child is None:
                    child = node.children[segment] = _TrieNode()
                node = child
        bucket = node.many if trailing_many else node.terminal
        bucket[key] = value
        self._size += 1

    def remove(
        self,
        pattern: str,
        key: str,
        segments: Optional[Tuple[str, ...]] = None,
    ) -> Optional[V]:
        """Drop the entry for (*pattern*, *key*), pruning empty nodes."""
        if segments is None:
            segments = split_topic(pattern)
        if MANY_SEGMENTS in segments[:-1]:
            bucket = self._degenerate.get(pattern)
            if bucket is None:
                return None
            value = bucket.pop(key, None)
            if value is not None:
                self._size -= 1
            if not bucket:
                del self._degenerate[pattern]
            return value
        trailing_many = segments[-1] == MANY_SEGMENTS
        if trailing_many:
            segments = segments[:-1]
        path: List[Tuple[_TrieNode[V], str]] = []
        node = self._root
        for segment in segments:
            next_node = node.star if segment == ONE_SEGMENT else node.children.get(segment)
            if next_node is None:
                return None
            path.append((node, segment))
            node = next_node
        bucket = node.many if trailing_many else node.terminal
        value = bucket.pop(key, None)
        if value is None:
            return None
        self._size -= 1
        # Prune now-empty nodes bottom-up so churny pattern sets do not
        # leave dead branches behind.
        for parent, segment in reversed(path):
            if not node.is_empty():
                break
            if segment == ONE_SEGMENT:
                parent.star = None
            else:
                del parent.children[segment]
            node = parent
        return value

    # -- lookup ------------------------------------------------------------

    def match(self, topic: str) -> List[V]:
        """All values whose pattern matches *topic* (arbitrary order)."""
        segments = split_topic(topic)
        length = len(segments)
        results: List[V] = []
        # Iterative DFS over (node, consumed-segment-count). The frontier
        # stays small: one branch per ``*`` wildcard along the topic.
        stack: List[Tuple[_TrieNode[V], int]] = [(self._root, 0)]
        while stack:
            node, consumed = stack.pop()
            if node.many and consumed < length:
                # ``#`` must swallow at least one remaining segment.
                results.extend(node.many.values())
            if consumed == length:
                if node.terminal:
                    results.extend(node.terminal.values())
                continue
            segment = segments[consumed]
            child = node.children.get(segment)
            if child is not None:
                stack.append((child, consumed + 1))
            if node.star is not None:
                stack.append((node.star, consumed + 1))
        degenerate = self._degenerate.get(topic)
        if degenerate:
            results.extend(degenerate.values())
        return results
