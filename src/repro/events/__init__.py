"""The event-processing backend (paper §4.1–§4.3).

Application logic in SafeWeb is implemented as event processing units
that exchange labelled events through an IFC-aware broker, under the
control of an engine that tracks labels across callbacks and isolates
units inside an IFC jail.
"""

from repro.events.event import Event
from repro.events.context import LabelContext, current_labels, extend_labels
from repro.events.selector import Selector, parse_selector, selector_literal
from repro.events.broker import Broker, Subscription
from repro.events.store import LabeledStore
from repro.events.jail import Jail, isolate_callback
from repro.events.unit import Unit, unit_from_function
from repro.events.engine import EventProcessingEngine
from repro.events.cluster import ClusterEngine, ClusterRouter
from repro.events.lanes import EngineStats, ExecutionLane, LaneScheduler
from repro.events.ring import HashRing, stable_hash
from repro.events.supervision import (
    CircuitBreaker,
    SupervisionPolicy,
    Supervisor,
    dlq_topic,
)

__all__ = [
    "CircuitBreaker",
    "ClusterEngine",
    "ClusterRouter",
    "HashRing",
    "stable_hash",
    "SupervisionPolicy",
    "Supervisor",
    "dlq_topic",
    "EngineStats",
    "ExecutionLane",
    "LaneScheduler",
    "Event",
    "LabelContext",
    "current_labels",
    "extend_labels",
    "Selector",
    "parse_selector",
    "selector_literal",
    "Broker",
    "Subscription",
    "LabeledStore",
    "Jail",
    "isolate_callback",
    "Unit",
    "unit_from_function",
    "EventProcessingEngine",
]
