"""Event ↔ labeled-document codec: the cluster's IPC wire format.

Events crossing a process boundary ride STOMP frame bodies as JSON
documents produced by the single-pass labeled codec
(:func:`repro.taint.json_codec.encode_document`). The split mirrors how
the document store persists labels:

* the **plain document** carries topic, attributes, payload and
  timestamp — ordinary JSON;
* the **sidecar** carries RFC 6901 pointers → label URIs for every
  *value-level* label inside the event (a :class:`LabeledStr` payload or
  attribute), which the bare STOMP path would otherwise strip;
* the **event-level** :class:`LabelSet` is recorded in the wrapper *and*
  travels in the ``x-safeweb-labels`` transport header — the header is
  what the receiving shard broker's clearance check reads, the body copy
  is what the far side rebuilds the event from, and
  :func:`decode_event` refuses a mismatch between the two so a hop
  cannot silently downgrade an event's confidentiality.

Control-plane payloads (store dumps, audit dumps, placement manifests)
use the same machinery via :func:`encode_payload`/:func:`decode_payload`
so labeled values survive collection into the parent process too.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.core.labels import LabelSet
from repro.events.event import Event
from repro.exceptions import SecurityViolation, StompProtocolError
from repro.taint.json_codec import decode_document, encode_document

__all__ = ["encode_event", "decode_event", "encode_payload", "decode_payload"]

#: Wire version; bump when the wrapper layout changes.
CLUSTER_BODY_VERSION = 1


def encode_event(event: Event) -> str:
    """Serialise an event (value labels included) for a process hop."""
    document = {
        "topic": event.topic,
        "attributes": dict(event.attributes),
        "payload": event.payload,
        "timestamp": event.timestamp,
    }
    plain, sidecar = encode_document(document)
    return json.dumps(
        {
            "v": CLUSTER_BODY_VERSION,
            "doc": plain,
            "sidecar": sidecar,
            "labels": event.labels.to_uris(),
        },
        sort_keys=True,
    )


def decode_event(body: str, transport_labels: Optional[LabelSet] = None) -> Event:
    """Rebuild the event encoded by :func:`encode_event`.

    *transport_labels* is the label set the transport header carried —
    the set the receiving broker's clearance check actually enforced. A
    body claiming different event-level labels is tamper evidence and
    raises :class:`SecurityViolation` rather than trusting either copy.
    """
    try:
        wrapper = json.loads(body)
    except (TypeError, ValueError) as error:
        raise StompProtocolError(f"undecodable cluster body: {error}") from None
    if not isinstance(wrapper, dict) or wrapper.get("v") != CLUSTER_BODY_VERSION:
        raise StompProtocolError("unknown cluster body version")
    document = decode_document(wrapper.get("doc") or {}, wrapper.get("sidecar") or {})
    labels = LabelSet.from_uris(wrapper.get("labels") or [])
    if transport_labels is not None and labels != transport_labels:
        raise SecurityViolation(
            "cluster body labels do not match transport labels "
            f"({sorted(labels.to_uris())} != {sorted(transport_labels.to_uris())})"
        )
    return Event(
        topic=str(document["topic"]),
        attributes=document.get("attributes") or {},
        payload=document.get("payload"),
        labels=labels,
        timestamp=document.get("timestamp"),
    )


def encode_payload(value: Any) -> str:
    """Serialise an arbitrary labeled structure for the control plane."""
    plain, sidecar = encode_document(value)
    return json.dumps(
        {"v": CLUSTER_BODY_VERSION, "doc": plain, "sidecar": sidecar},
        sort_keys=True,
        default=str,
    )


def decode_payload(text: str) -> Any:
    """Rebuild a structure encoded by :func:`encode_payload`."""
    wrapper = json.loads(text)
    if not isinstance(wrapper, dict) or wrapper.get("v") != CLUSTER_BODY_VERSION:
        raise StompProtocolError("unknown cluster payload version")
    return decode_document(wrapper.get("doc"), wrapper.get("sidecar") or {})
