"""The IFC-aware event broker (paper §4.2).

Units communicate by publishing events and subscribing to topics, with
optional SQL-92 content selectors. The broker filters events by security
label: *for an event to be delivered to a subscriber, the set of its
confidentiality labels must be a subset of those labels for which the
subscriber possesses clearance privileges*. Label filtering is silent —
an uncleared subscriber simply never sees the event — but every decision
is recorded in the audit log.

Subscriptions carry unique identifiers (the paper's extension to STOMP)
so multiple subscriptions from one unit are tracked independently.

Topic patterns support exact segments, ``*`` (one segment) and a trailing
``#`` (any remaining segments), e.g. ``/mdt/*/report`` or ``/patient/#``.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.audit import AuditLog, default_audit_log
from repro.core.labels import LabelSet
from repro.core.privileges import PrivilegeSet
from repro.events.event import Event
from repro.events.selector import Selector, parse_selector
from repro.exceptions import SafeWebError

_subscription_ids = itertools.count(1)


def match_topic(pattern: str, topic: str) -> bool:
    """Match a subscription pattern against an event topic."""
    if pattern == topic:
        return True
    pattern_parts = pattern.strip("/").split("/")
    topic_parts = topic.strip("/").split("/")
    for index, part in enumerate(pattern_parts):
        if part == "#":
            # '#' must be the last pattern segment and match at least one
            # topic segment.
            return index == len(pattern_parts) - 1 and index < len(topic_parts)
        if index >= len(topic_parts):
            return False
        if part != "*" and part != topic_parts[index]:
            return False
    return len(pattern_parts) == len(topic_parts)


@dataclass
class Subscription:
    """A registered subscription with its security context."""

    subscription_id: str
    topic: str
    callback: Callable[[Event], None]
    principal: str
    clearance: PrivilegeSet
    selector: Optional[Selector] = None
    require_integrity: LabelSet = field(default_factory=LabelSet)
    active: bool = True

    def wants(self, event: Event) -> bool:
        """Topic + selector match (no security decision here)."""
        if not match_topic(self.topic, event.topic):
            return False
        if self.selector is not None and not self.selector.matches(event.attributes):
            return False
        return True

    def cleared_for(self, event: Event) -> bool:
        """The §4.2 label check."""
        if not self.clearance.clearance_covers(event.labels):
            return False
        if self.require_integrity and not event.labels.meets_integrity(self.require_integrity):
            return False
        return True


class BrokerStats:
    """Counters used by the throughput benchmarks (E4, A1)."""

    __slots__ = ("published", "delivered", "label_filtered", "selector_filtered", "errors")

    def __init__(self):
        self.published = 0
        self.delivered = 0
        self.label_filtered = 0
        self.selector_filtered = 0
        self.errors = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "published": self.published,
            "delivered": self.delivered,
            "label_filtered": self.label_filtered,
            "selector_filtered": self.selector_filtered,
            "errors": self.errors,
        }


class Broker:
    """Topic/content/label-matching event broker.

    ``threaded=False`` (default) delivers synchronously in the
    publisher's thread — deterministic, used by tests and by the engine's
    in-process pipelines. ``threaded=True`` enqueues events and a
    dispatcher thread delivers them, which is how the STOMP server runs
    so that jailed publishers never perform socket I/O themselves.
    """

    def __init__(
        self,
        threaded: bool = False,
        audit: Optional[AuditLog] = None,
        label_checks: bool = True,
        raise_errors: bool = False,
    ):
        self._lock = threading.RLock()
        self._subscriptions: Dict[str, Subscription] = {}
        self._audit = audit if audit is not None else default_audit_log()
        self._threaded = threaded
        self._label_checks = label_checks
        #: When True (in-process deployments), subscriber exceptions
        #: propagate to the publisher instead of being contained — the
        #: engine relies on this to surface SecurityViolations in tests.
        self._raise_errors = raise_errors
        self.stats = BrokerStats()
        self._queue: "queue.Queue[Optional[Event]]" = queue.Queue()
        self._dispatcher: Optional[threading.Thread] = None
        if threaded:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._dispatcher is not None:
                return
            self._threaded = True
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="safeweb-broker", daemon=True
            )
            self._dispatcher.start()

    def stop(self, timeout: float = 5.0) -> None:
        with self._lock:
            dispatcher = self._dispatcher
            self._dispatcher = None
        if dispatcher is not None:
            self._queue.put(None)
            dispatcher.join(timeout)

    def drain(self, timeout: float = 5.0) -> None:
        """Block until queued events have been dispatched (threaded mode)."""
        if self._threaded:
            done = threading.Event()
            self._queue.put(done)  # type: ignore[arg-type]
            done.wait(timeout)

    # -- subscription management ------------------------------------------------

    def subscribe(
        self,
        topic: str,
        callback: Callable[[Event], None],
        principal: str = "anonymous",
        clearance: Optional[PrivilegeSet] = None,
        selector: Optional[str | Selector] = None,
        subscription_id: Optional[str] = None,
        require_integrity: LabelSet | None = None,
    ) -> Subscription:
        if isinstance(selector, str):
            selector = parse_selector(selector)
        subscription = Subscription(
            subscription_id=subscription_id or f"sub-{next(_subscription_ids)}",
            topic=topic,
            callback=callback,
            principal=principal,
            clearance=clearance or PrivilegeSet.empty(),
            selector=selector,
            require_integrity=require_integrity or LabelSet(),
        )
        with self._lock:
            if subscription.subscription_id in self._subscriptions:
                raise SafeWebError(
                    f"duplicate subscription id {subscription.subscription_id!r}"
                )
            self._subscriptions[subscription.subscription_id] = subscription
        return subscription

    def unsubscribe(self, subscription_id: str) -> None:
        with self._lock:
            subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is not None:
            subscription.active = False

    def subscriptions_for(self, principal: str) -> List[Subscription]:
        with self._lock:
            return [s for s in self._subscriptions.values() if s.principal == principal]

    def __len__(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    # -- publication ---------------------------------------------------------------

    def publish(self, event: Event, publisher: str = "anonymous") -> int:
        """Publish an event; returns the number of deliveries (sync mode).

        In threaded mode the event is enqueued and the return value is 0;
        delivery counts accumulate in :attr:`stats`.
        """
        self.stats.published += 1
        self._audit.allowed("broker", "publish", publisher, labels=event.labels)
        if self._threaded:
            self._queue.put(event)
            return 0
        return self._deliver(event)

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            if isinstance(item, threading.Event):
                item.set()
                continue
            self._deliver(item)

    def _deliver(self, event: Event) -> int:
        with self._lock:
            candidates = list(self._subscriptions.values())
        delivered = 0
        for subscription in candidates:
            if not subscription.active:
                continue
            if not match_topic(subscription.topic, event.topic):
                continue
            if subscription.selector is not None and not subscription.selector.matches(
                event.attributes
            ):
                self.stats.selector_filtered += 1
                continue
            if self._label_checks and not subscription.cleared_for(event):
                self.stats.label_filtered += 1
                self._audit.denied(
                    "broker",
                    "deliver",
                    subscription.principal,
                    labels=event.labels,
                    detail=f"subscription {subscription.subscription_id} lacks clearance",
                )
                continue
            try:
                subscription.callback(event)
                delivered += 1
                self.stats.delivered += 1
                if self._label_checks:
                    self._audit.allowed(
                        "broker", "deliver", subscription.principal, labels=event.labels
                    )
            except Exception as exc:  # noqa: BLE001 - a failing subscriber must not stop others
                self.stats.errors += 1
                self._audit.denied(
                    "broker",
                    "deliver",
                    subscription.principal,
                    labels=event.labels,
                    detail=f"callback error: {exc!r}",
                )
                if self._raise_errors:
                    raise
        return delivered
