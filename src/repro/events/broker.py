"""The IFC-aware event broker (paper §4.2).

Units communicate by publishing events and subscribing to topics, with
optional SQL-92 content selectors. The broker filters events by security
label: *for an event to be delivered to a subscriber, the set of its
confidentiality labels must be a subset of those labels for which the
subscriber possesses clearance privileges*. Label filtering is silent —
an uncleared subscriber simply never sees the event — but every decision
is recorded in the audit log.

Subscriptions carry unique identifiers (the paper's extension to STOMP)
so multiple subscriptions from one unit are tracked independently.

Topic patterns support exact segments, ``*`` (one segment) and a trailing
``#`` (any remaining segments), e.g. ``/mdt/*/report`` or ``/patient/#``.

Delivery fast path
------------------

Publish cost is kept independent of the number of subscriptions through
four layers, none of which weakens a check:

1. candidate subscriptions come from a segment trie
   (:class:`~repro.events.index.TopicTrie`) instead of a linear scan —
   :func:`match_topic` remains as the reference matcher and the property
   suite proves the trie equivalent to it;
2. resolved candidate lists are cached per concrete topic and
   invalidated on any subscribe/unsubscribe;
3. selector evaluation uses compiled closures, and identical selector
   objects (shared via the parse cache) are evaluated once per publish;
4. clearance decisions are memoized per ``(labels, privilege
   generation)`` and audit records are deferred through
   :meth:`~repro.core.audit.AuditLog.note`.

:class:`BrokerStats` exposes ``index_hits`` / ``route_cache_hits`` /
``scans`` so benchmarks (A1/E4) can attribute wins to each layer.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.audit import ALLOWED, DENIED, AuditLog, default_audit_log
from repro.core.labels import LabelSet
from repro.core.privileges import PrivilegeSet
from repro.events.event import Event
from repro.events.index import TopicTrie
from repro.events.selector import Selector, parse_selector
from repro.exceptions import SafeWebError
from repro.faults import NULL_FAULTS, ChaosInjector

_subscription_ids = itertools.count(1)
_subscription_seq = itertools.count(1)

#: Bound on the topic → candidate-list cache; publishes to more distinct
#: topics than this simply rebuild entries from the trie.
_ROUTE_CACHE_LIMIT = 4096

#: Bound on the per-subscription clearance decision cache.
_DECISION_CACHE_LIMIT = 1024


def match_topic(pattern: str, topic: str) -> bool:
    """Match a subscription pattern against an event topic.

    This is the reference implementation the trie index is proven
    equivalent to; the delivery path itself no longer calls it.
    """
    if pattern == topic:
        return True
    pattern_parts = pattern.strip("/").split("/")
    topic_parts = topic.strip("/").split("/")
    for index, part in enumerate(pattern_parts):
        if part == "#":
            # '#' must be the last pattern segment and match at least one
            # topic segment.
            return index == len(pattern_parts) - 1 and index < len(topic_parts)
        if index >= len(topic_parts):
            return False
        if part != "*" and part != topic_parts[index]:
            return False
    return len(pattern_parts) == len(topic_parts)


@dataclass(slots=True)
class Subscription:
    """A registered subscription with its security context."""

    subscription_id: str
    topic: str
    callback: Callable[[Event], None]
    principal: str
    clearance: PrivilegeSet
    selector: Optional[Selector] = None
    require_integrity: LabelSet = field(default_factory=LabelSet)
    active: bool = True
    #: Pre-split topic segments, computed once at subscribe time.
    segments: Tuple[str, ...] = field(init=False, repr=False, compare=False, default=())
    #: Registration order; delivery iterates subscriptions in this order.
    seq: int = field(init=False, repr=False, compare=False, default=0)
    #: Memoized §4.2 decisions keyed by event label set, valid for one
    #: clearance generation.
    _decision_cache: Dict[LabelSet, bool] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _cache_generation: int = field(init=False, repr=False, compare=False, default=-1)
    #: The denial detail is subscription-constant; format it once instead
    #: of per filtered event.
    _denial_detail: str = field(init=False, repr=False, compare=False, default="")

    def __post_init__(self) -> None:
        self.segments = tuple(self.topic.strip("/").split("/"))
        self.seq = next(_subscription_seq)
        self._denial_detail = f"subscription {self.subscription_id} lacks clearance"

    def wants(self, event: Event) -> bool:
        """Topic + selector match (no security decision here)."""
        if not match_topic(self.topic, event.topic):
            return False
        if self.selector is not None and not self.selector.matches(event.attributes):
            return False
        return True

    def cleared_for(self, event: Event) -> bool:
        """The §4.2 label check, memoized per (labels, clearance generation)."""
        labels = event.labels
        generation = self.clearance.generation
        if generation != self._cache_generation:
            self._decision_cache.clear()
            self._cache_generation = generation
        cache = self._decision_cache
        decision = cache.get(labels)
        if decision is None:
            decision = self._evaluate_clearance(labels)
            if len(cache) >= _DECISION_CACHE_LIMIT:
                cache.clear()
            cache[labels] = decision
        return decision

    def _evaluate_clearance(self, labels: LabelSet) -> bool:
        if not self.clearance.clearance_covers(labels):
            return False
        if self.require_integrity and not labels.meets_integrity(self.require_integrity):
            return False
        return True


class BrokerStats:
    """Counters used by the throughput benchmarks (E4, A1)."""

    __slots__ = (
        "published",
        "delivered",
        "label_filtered",
        "selector_filtered",
        "errors",
        "index_hits",
        "route_cache_hits",
        "scans",
        "candidates",
    )

    def __init__(self):
        self.published = 0
        self.delivered = 0
        self.label_filtered = 0
        self.selector_filtered = 0
        self.errors = 0
        #: Deliveries whose candidates came from a fresh trie lookup.
        self.index_hits = 0
        #: Deliveries served straight from the per-topic route cache.
        self.route_cache_hits = 0
        #: Deliveries that fell back to the legacy linear scan.
        self.scans = 0
        #: Total candidate subscriptions examined across deliveries.
        self.candidates = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "published": self.published,
            "delivered": self.delivered,
            "label_filtered": self.label_filtered,
            "selector_filtered": self.selector_filtered,
            "errors": self.errors,
            "index_hits": self.index_hits,
            "route_cache_hits": self.route_cache_hits,
            "scans": self.scans,
            "candidates": self.candidates,
        }


#: A prepared candidate: (subscription, callback, compiled selector
#: matcher or None, selector identity for per-publish memoization).
_RouteEntry = Tuple[Subscription, Callable[[Event], None], Optional[Callable], Optional[Selector]]

#: A resolved route: the full candidate entries plus, when no candidate
#: carries a selector, a lean (subscription, callback) list the delivery
#: loop can run without selector bookkeeping.
_Route = Tuple[Sequence[_RouteEntry], Optional[Sequence[Tuple[Subscription, Callable]]]]


class Broker:
    """Topic/content/label-matching event broker.

    ``threaded=False`` (default) delivers synchronously in the
    publisher's thread — deterministic, used by tests and by the engine's
    in-process pipelines. ``threaded=True`` enqueues events and a
    dispatcher thread delivers them, which is how the STOMP server runs
    so that jailed publishers never perform socket I/O themselves.

    ``use_index=False`` routes through the legacy linear scan over
    :func:`match_topic` — kept for the equivalence property tests and as
    an escape hatch; semantics are identical either way.
    """

    def __init__(
        self,
        threaded: bool = False,
        audit: Optional[AuditLog] = None,
        label_checks: bool = True,
        raise_errors: bool = False,
        use_index: bool = True,
        chaos: ChaosInjector = NULL_FAULTS,
    ):
        self._lock = threading.RLock()
        self._subscriptions: Dict[str, Subscription] = {}
        self._audit = audit if audit is not None else default_audit_log()
        # Fault-injection hook (repro.faults); the publish/dispatch hot
        # paths skip instrumentation entirely when nothing is armed.
        self._chaos = chaos
        self._chaos_active = chaos is not NULL_FAULTS
        self._threaded = threaded
        self._label_checks = label_checks
        #: When True (in-process deployments), subscriber exceptions
        #: propagate to the publisher instead of being contained — the
        #: engine relies on this to surface SecurityViolations in tests.
        self._raise_errors = raise_errors
        self._use_index = use_index
        self._index: TopicTrie[Subscription] = TopicTrie()
        self._routes: Dict[str, Sequence[_RouteEntry]] = {}
        self.stats = BrokerStats()
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._dispatcher: Optional[threading.Thread] = None
        if threaded:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._dispatcher is not None:
                return
            self._threaded = True
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="safeweb-broker", daemon=True
            )
            self._dispatcher.start()

    def stop(self, timeout: float = 5.0) -> None:
        with self._lock:
            dispatcher = self._dispatcher
            self._dispatcher = None
        if dispatcher is not None:
            self._queue.put(None)
            dispatcher.join(timeout)

    def drain(self, timeout: float = 5.0) -> None:
        """Block until queued events have been dispatched (threaded mode)."""
        if self._threaded:
            done = threading.Event()
            self._queue.put(done)
            done.wait(timeout)

    # -- subscription management ------------------------------------------------

    def subscribe(
        self,
        topic: str,
        callback: Callable[[Event], None],
        principal: str = "anonymous",
        clearance: Optional[PrivilegeSet] = None,
        selector: Optional[str | Selector] = None,
        subscription_id: Optional[str] = None,
        require_integrity: LabelSet | None = None,
    ) -> Subscription:
        if isinstance(selector, str):
            selector = parse_selector(selector)
        subscription = Subscription(
            subscription_id=subscription_id or f"sub-{next(_subscription_ids)}",
            topic=topic,
            callback=callback,
            principal=principal,
            clearance=clearance or PrivilegeSet.empty(),
            selector=selector,
            require_integrity=require_integrity or LabelSet(),
        )
        with self._lock:
            if subscription.subscription_id in self._subscriptions:
                raise SafeWebError(
                    f"duplicate subscription id {subscription.subscription_id!r}"
                )
            self._subscriptions[subscription.subscription_id] = subscription
            self._index.add(
                topic,
                subscription.subscription_id,
                subscription,
                segments=subscription.segments,
            )
            self._routes.clear()
        return subscription

    def unsubscribe(self, subscription_id: str) -> None:
        with self._lock:
            subscription = self._subscriptions.pop(subscription_id, None)
            if subscription is not None:
                self._index.remove(
                    subscription.topic, subscription_id, segments=subscription.segments
                )
                self._routes.clear()
        if subscription is not None:
            subscription.active = False

    def subscriptions_for(self, principal: str) -> List[Subscription]:
        with self._lock:
            return [s for s in self._subscriptions.values() if s.principal == principal]

    def __len__(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    # -- publication ---------------------------------------------------------------

    def publish(self, event: Event, publisher: str = "anonymous") -> int:
        """Publish an event; returns the number of deliveries (sync mode).

        In threaded mode the event is enqueued and the return value is 0;
        delivery counts accumulate in :attr:`stats`.

        A chaos fault at ``broker.publish`` raises *to the publisher*
        before the event is accepted — fail-stop, never silent: the
        caller knows the event did not enter the broker.
        """
        if self._chaos_active:
            self._chaos.hit("broker.publish")
        self.stats.published += 1
        self._audit.note("broker", "publish", publisher, ALLOWED, event.labels)
        if self._threaded:
            self._queue.put(event)
            return 0
        return self._deliver(event)

    def publish_many(self, events: Iterable[Event], publisher: str = "anonymous") -> int:
        """Publish a batch of events; returns total deliveries (sync mode).

        Semantically identical to calling :meth:`publish` per event — one
        audit record and one ``published`` count each — but the batch is
        enqueued as a single item in threaded mode, so the dispatcher
        drains it without per-event queue handoffs.
        """
        batch = list(events)
        if not batch:
            return 0
        stats = self.stats
        audit_note = self._audit.note
        stats.published += len(batch)
        for event in batch:
            audit_note("broker", "publish", publisher, ALLOWED, event.labels)
        if self._threaded:
            self._queue.put(batch)
            return 0
        deliver = self._deliver
        return sum(deliver(event) for event in batch)

    def _dispatch_loop(self) -> None:
        get = self._queue.get
        get_nowait = self._queue.get_nowait
        deliver = self._dispatch_one
        item: object = get()
        while True:
            if item is None:
                return
            if isinstance(item, threading.Event):
                item.set()
            elif isinstance(item, list):
                for event in item:
                    deliver(event)
            else:
                deliver(item)
            # Drain opportunistically so bursts are delivered in batches
            # without a blocking get per event.
            try:
                item = get_nowait()
            except queue.Empty:
                item = get()

    def _dispatch_one(self, event: Event) -> None:
        """One dispatcher delivery; the thread must survive anything.

        ``raise_errors=True`` makes the delivery loops re-raise subscriber
        exceptions so *synchronous* publishers see them — but on the
        dispatcher thread there is no publisher stack, and an uncaught
        exception used to kill the thread silently, stalling every
        subsequent event. Errors are already counted and audited by the
        delivery loop; here they are additionally recorded under
        ``broker/dispatch`` so a surviving-but-noisy dispatcher is
        visible in the log.
        """
        try:
            if self._chaos_active:
                self._chaos.hit("broker.dispatch")
            self._deliver(event)
        except Exception as error:  # noqa: BLE001 - the dispatcher must keep running
            self._audit.note(
                "broker",
                "dispatch",
                "dispatcher",
                DENIED,
                event.labels,
                f"subscriber error contained on dispatcher thread: {error!r}",
            )

    # -- delivery ------------------------------------------------------------------

    def _build_route(self, topic: str) -> _Route:
        """Resolve and cache the prepared candidate list for *topic*."""
        with self._lock:
            if self._use_index:
                matched = self._index.match(topic)
                self.stats.index_hits += 1
            else:
                matched = [
                    subscription
                    for subscription in self._subscriptions.values()
                    if match_topic(subscription.topic, topic)
                ]
                self.stats.scans += 1
            matched.sort(key=lambda subscription: subscription.seq)
            entries = tuple(
                (
                    subscription,
                    subscription.callback,
                    None if subscription.selector is None else subscription.selector.matches,
                    subscription.selector,
                )
                for subscription in matched
            )
            # The lean loop only runs with label checks off, so don't
            # build (or scan for) the plain variant otherwise.
            plain: Optional[Tuple[Tuple[Subscription, Callable], ...]] = None
            if not self._label_checks and all(
                subscription.selector is None for subscription in matched
            ):
                plain = tuple(
                    (subscription, subscription.callback) for subscription in matched
                )
            route: _Route = (entries, plain)
            if len(self._routes) >= _ROUTE_CACHE_LIMIT:
                self._routes.clear()
            self._routes[topic] = route
        return route

    def _deliver(self, event: Event) -> int:
        topic = event.topic
        route = self._routes.get(topic)
        if route is None:
            route = self._build_route(topic)
        else:
            self.stats.route_cache_hits += 1
        entries, plain = route
        stats = self.stats
        stats.candidates += len(entries)
        if not entries:
            return 0
        if plain is not None and not self._label_checks:
            return self._deliver_plain(event, plain)
        return self._deliver_general(event, entries)

    def _deliver_plain(
        self, event: Event, plain: Sequence[Tuple[Subscription, Callable]]
    ) -> int:
        """Delivery with no selectors and label checks off: pure fan-out."""
        stats = self.stats
        delivered = 0
        try:
            for subscription, callback in plain:
                if not subscription.active:
                    continue
                try:
                    callback(event)
                    delivered += 1
                except Exception as exc:  # noqa: BLE001 - a failing subscriber must not stop others
                    stats.errors += 1
                    self._audit.note(
                        "broker",
                        "deliver",
                        subscription.principal,
                        DENIED,
                        event.labels,
                        f"callback error: {exc!r}",
                    )
                    if self._raise_errors:
                        raise
        finally:
            stats.delivered += delivered
        return delivered

    def _deliver_general(self, event: Event, entries: Sequence[_RouteEntry]) -> int:
        stats = self.stats
        label_checks = self._label_checks
        attributes = event.attributes
        labels = event.labels
        audit_note = self._audit.note
        delivered = 0
        selector_filtered = 0
        label_filtered = 0
        # Identical selector objects (shared through the parse cache) are
        # evaluated once per publish, not once per subscription.
        selector_memo: Dict[Selector, bool] = {}
        try:
            for subscription, callback, selector_matches, selector in entries:
                if not subscription.active:
                    continue
                if selector_matches is not None:
                    matched = selector_memo.get(selector)
                    if matched is None:
                        matched = selector_matches(attributes)
                        selector_memo[selector] = matched
                    if not matched:
                        selector_filtered += 1
                        continue
                if label_checks and not subscription.cleared_for(event):
                    label_filtered += 1
                    audit_note(
                        "broker",
                        "deliver",
                        subscription.principal,
                        DENIED,
                        labels,
                        subscription._denial_detail,
                    )
                    continue
                try:
                    callback(event)
                    delivered += 1
                    if label_checks:
                        audit_note("broker", "deliver", subscription.principal, ALLOWED, labels)
                except Exception as exc:  # noqa: BLE001 - a failing subscriber must not stop others
                    stats.errors += 1
                    audit_note(
                        "broker",
                        "deliver",
                        subscription.principal,
                        DENIED,
                        labels,
                        f"callback error: {exc!r}",
                    )
                    if self._raise_errors:
                        raise
        finally:
            stats.delivered += delivered
            stats.selector_filtered += selector_filtered
            stats.label_filtered += label_filtered
        return delivered
