"""The ambient label set of a running callback (paper §4.3, "Label tracking").

The engine associates a set of labels with the execution of each unit
callback — the paper's ``_LABELS`` — initialised to the labels of the
event being processed. Reading from the labelled key-value store widens
it; publishing stamps it onto outgoing events.

The set is tracked per thread with an explicit stack so nested contexts
(e.g. a privileged unit synchronously draining a queue) restore cleanly.

The parallel engine's worker threads rely on exactly this per-thread
tracking to carry the context **per task**: each lane task enters a
fresh ``LabelContext(event.labels)`` on whichever worker runs it and
pops it on exit, so a worker holds no ambient labels between tasks and
two lanes' ambient sets can never bleed into each other (see
docs/ENGINE.md).
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.core.labels import Label, LabelSet

_state = threading.local()


def _stack() -> list:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    return stack


def current_labels() -> LabelSet:
    """The ambient ``_LABELS`` of the calling thread (empty outside callbacks)."""
    stack = _stack()
    if not stack:
        return LabelSet()
    return stack[-1]


def extend_labels(labels: LabelSet | Iterable[Label | str]) -> LabelSet:
    """Widen the ambient set by plain union; returns the new set."""
    stack = _stack()
    if not stack:
        raise RuntimeError("no active label context; extend_labels must run inside a callback")
    if not isinstance(labels, LabelSet):
        labels = LabelSet(labels)
    stack[-1] = stack[-1].union(labels)
    return stack[-1]


def combine_ambient(labels: LabelSet | Iterable[Label | str]) -> LabelSet:
    """Fold read data into the ambient set with §4.1 combination rules.

    Confidentiality widens (union); integrity narrows (intersection) —
    reading unendorsed data makes everything derived afterwards
    unendorsed too. Store reads use this, not :func:`extend_labels`.
    """
    stack = _stack()
    if not stack:
        raise RuntimeError("no active label context; combine_ambient must run inside a callback")
    if not isinstance(labels, LabelSet):
        labels = LabelSet(labels)
    stack[-1] = stack[-1].combine(labels)
    return stack[-1]


class LabelContext:
    """Context manager establishing the ambient label set for a callback.

    >>> with LabelContext(event.labels):
    ...     handler(event)
    """

    __slots__ = ("_initial",)

    def __init__(self, initial: Optional[LabelSet] = None):
        self._initial = initial if initial is not None else LabelSet()

    def __enter__(self) -> "LabelContext":
        _stack().append(self._initial)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _stack().pop()

    @property
    def labels(self) -> LabelSet:
        return current_labels()
