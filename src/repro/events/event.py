"""Labelled events (paper §4.1).

Events consist of a set of key-value attribute pairs and an optional data
payload; keys, values and the body are untyped strings. SafeWeb
associates a set of security labels with each event. Instances are
immutable: derivation (the engine's publish path) builds new events whose
labels follow the §4.1 composition rules.
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Dict, Iterable, Mapping, Optional

from repro.core.labels import Label, LabelSet
from repro.exceptions import SafeWebError

_event_ids = itertools.count(1)


class Event:
    """An immutable labelled event."""

    __slots__ = ("topic", "attributes", "payload", "labels", "event_id", "timestamp")

    def __init__(
        self,
        topic: str,
        attributes: Optional[Mapping[str, str]] = None,
        payload: Optional[str] = None,
        labels: LabelSet | Iterable[Label | str] = (),
        event_id: Optional[int] = None,
        timestamp: Optional[float] = None,
    ):
        if not topic or not topic.startswith("/"):
            raise SafeWebError(f"event topic must start with '/': {topic!r}")
        coerced: Dict[str, str] = {}
        for key, value in (attributes or {}).items():
            coerced[str(key)] = str(value)
        object.__setattr__(self, "topic", topic)
        object.__setattr__(self, "attributes", coerced)
        object.__setattr__(self, "payload", None if payload is None else str(payload))
        if not isinstance(labels, LabelSet):
            # Interned constructor: an empty iterable resolves to the
            # canonical empty set, a repeated label vocabulary to the
            # same canonical instances — event creation allocates no
            # per-event label state on the hot publish path.
            labels = LabelSet(labels) if labels else LabelSet.empty()
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "event_id", event_id if event_id is not None else next(_event_ids))
        object.__setattr__(self, "timestamp", timestamp if timestamp is not None else time.time())

    def __setattr__(self, name, value):
        raise AttributeError("Event instances are immutable")

    def __delattr__(self, name):
        raise AttributeError("Event instances are immutable")

    # -- access --------------------------------------------------------------

    def __getitem__(self, key: str) -> str:
        """Attribute access mirroring the paper's ``event[:patient_id]``."""
        return self.attributes[str(key)]

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.attributes.get(str(key), default)

    def __contains__(self, key: str) -> bool:
        return str(key) in self.attributes

    # -- derivation ------------------------------------------------------------

    def with_labels(self, labels: LabelSet) -> "Event":
        """A copy carrying exactly *labels* (enforcement done by callers)."""
        return Event(
            self.topic,
            self.attributes,
            self.payload,
            labels,
            timestamp=self.timestamp,
        )

    def relabelled(
        self,
        add: Iterable[Label | str] = (),
        remove: Iterable[Label | str] = (),
    ) -> "Event":
        """A copy with labels added/removed — the engine checks privileges."""
        return self.with_labels(self.labels.add(*add).remove(*remove))

    # -- comparison helpers ------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.topic == other.topic
            # Interned label sets compare by identity first, so checking
            # labels before the attribute dict is the cheap order.
            and self.labels == other.labels
            and self.attributes == other.attributes
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.topic, tuple(sorted(self.attributes.items())), self.payload, self.labels))

    def __repr__(self) -> str:
        return (
            f"Event(topic={self.topic!r}, attributes={self.attributes!r}, "
            f"labels={self.labels.to_uris()})"
        )

    # -- serialisation -------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "topic": self.topic,
            "attributes": dict(self.attributes),
            "payload": self.payload,
            "labels": self.labels.to_uris(),
            "timestamp": self.timestamp,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Event":
        return cls(
            topic=str(data["topic"]),
            attributes=dict(data.get("attributes") or {}),
            payload=data.get("payload"),
            labels=LabelSet.from_uris(data.get("labels") or []),
            timestamp=data.get("timestamp"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Event":
        return cls.from_dict(json.loads(text))
