"""Consistent-hash ring for topic-sharded broker placement.

The cluster engine partitions the broker's topic space across N shard
processes. Placement must be *stable* — every process in the cluster
(parent, workers, shards) must independently agree on which shard owns a
topic — so the ring hashes with MD5 rather than Python's ``hash()``,
which is salted per process (PYTHONHASHSEED) and would route the same
topic to different shards from different processes.

Classic Karger-style ring: each node is planted at ``vnodes`` points on
a 2^64 ring; a key is owned by the first node clockwise from the key's
hash. Virtual nodes smooth the partition sizes; removing a node only
reassigns the keys it owned (the property the cluster's drain/rebalance
path relies on).

Routing note: wildcard subscriptions (``*``/``#`` patterns) cannot be
hashed to one shard — the cluster registers those on *every* shard and
relies on publishes hashing to exactly one shard to avoid duplicate
delivery.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import SafeWebError

__all__ = ["HashRing", "stable_hash"]


def stable_hash(key: str) -> int:
    """A 64-bit hash that is identical in every Python process."""
    digest = hashlib.md5(key.encode("utf-8", "surrogateescape")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring mapping string keys to named nodes."""

    DEFAULT_VNODES = 64

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise SafeWebError("vnodes must be >= 1")
        self._vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        self._nodes: Dict[str, bool] = {}
        for node in nodes:
            self.add_node(node)

    # -- membership ----------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise SafeWebError(f"ring already contains node {node!r}")
        self._nodes[node] = True
        for replica in range(self._vnodes):
            self._points.append((stable_hash(f"{node}#{replica}"), node))
        self._rebuild()

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise SafeWebError(f"ring does not contain node {node!r}")
        del self._nodes[node]
        self._points = [point for point in self._points if point[1] != node]
        self._rebuild()

    def _rebuild(self) -> None:
        self._points.sort()
        self._keys = [point for point, _node in self._points]

    # -- lookup --------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The node owning *key* (first clockwise from the key's hash)."""
        if not self._points:
            raise SafeWebError("hash ring is empty")
        index = bisect.bisect(self._keys, stable_hash(key))
        if index == len(self._keys):
            index = 0
        return self._points[index][1]

    def preference(self, key: str, count: int = 2) -> List[str]:
        """The first *count* distinct nodes clockwise from *key*.

        The head is :meth:`node_for`; the tail is where the key lands if
        earlier nodes leave — the restart path's fallback order.
        """
        if not self._points:
            raise SafeWebError("hash ring is empty")
        found: List[str] = []
        start = bisect.bisect(self._keys, stable_hash(key))
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in found:
                found.append(node)
                if len(found) >= count:
                    break
        return found

    def partition(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Group *keys* by owning node (every node present in the result)."""
        buckets: Dict[str, List[str]] = {node: [] for node in self.nodes}
        for key in keys:
            buckets[self.node_for(key)].append(key)
        return buckets
