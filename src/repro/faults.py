"""Shared fault-injection harness for every tier of the middleware.

PR 6 taught the storage tier to crash deterministically at named points
(:mod:`repro.storage.faults`); this module generalises that machinery so
the *event* tier — broker dispatch, execution lanes, the supervised
engine, STOMP bridge sockets and federation hops — can be driven through
the same kind of schedule. Three fault shapes are supported at every
named point:

* **crash** (:meth:`ChaosInjector.crash_at`) — raise
  :class:`SimulatedCrash`, a ``BaseException`` nothing in the middleware
  may catch: models the process dying at that instant;
* **error** (:meth:`ChaosInjector.fail_at`) — raise an ordinary
  exception (:class:`InjectedFault` by default, or e.g. an ``OSError``
  for socket points): models a component failing while the process keeps
  running, which is what supervision, retries, dead-letter topics,
  circuit breakers and reconnect loops must absorb;
* **delay** (:meth:`ChaosInjector.delay_at`) — sleep: models a stall
  (slow backend, congested link) without failing.

Instrumented code calls ``chaos.hit("point")`` at each instant. With the
default :data:`NULL_FAULTS` injector every call is a cheap no-op — and
the hot paths (engine delivery, lane execution) skip the call entirely
when no injector is armed, so production deployments pay one attribute
check. Arrival counts are per-point and deterministic wherever execution
is serialised (per-unit FIFO lanes, the single broker dispatcher, the
single bridge sender), which is what lets the supervision property suite
replay *the same* fault schedule against the synchronous and the laned
engine and require identical outcomes.

Point names are dotted, with an optional ``:<qualifier>`` suffix for
per-instance points (e.g. ``engine.callback.before:aggregator``). The
cross-tier matrix lives in :data:`EVENT_CHAOS_POINTS` and is rendered in
docs/ROBUSTNESS.md; the storage-tier points remain in
:data:`repro.storage.faults.CRASH_POINTS`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple


class SimulatedCrash(BaseException):
    """The process died at a named crash point. Not an ``Exception``:
    nothing in the middleware may catch and survive it."""

    def __init__(self, point: str):
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class InjectedFault(Exception):
    """The default error an armed :meth:`ChaosInjector.fail_at` raises.

    An ordinary ``Exception`` on purpose: injected *errors* (as opposed
    to crashes) exist to exercise the containment, retry and dead-letter
    paths, which only handle ``Exception``.
    """

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


def _as_arrivals(on) -> Tuple[int, ...]:
    arrivals = (on,) if isinstance(on, int) else tuple(on)
    if not arrivals or any(n < 1 for n in arrivals):
        raise ValueError("arrival numbers count from 1")
    return arrivals


class ChaosInjector:
    """Armable crash/error/delay actions at named points.

    One injector instruments one system under test. ``crash_at`` counts
    arrivals *from arming* (countdown — the contract the storage suite
    established); ``fail_at``/``delay_at`` name **absolute** arrival
    numbers since the injector was created, which is what deterministic
    cross-mode fault schedules need ("fail the 3rd delivery to unit X").
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        #: point -> remaining arrivals before the crash fires.
        self._crash_points: Dict[str, int] = {}
        #: point -> {absolute arrival number -> exception to raise}.
        self._failures: Dict[str, Dict[int, BaseException]] = {}
        #: point -> {absolute arrival number -> seconds to sleep}.
        self._delays: Dict[str, Dict[int, float]] = {}
        #: point -> total arrivals seen.
        self._arrivals: Dict[str, int] = {}
        self.crashed_at: Optional[str] = None
        self.hits: List[str] = []

    # -- arming ----------------------------------------------------------------

    def crash_at(self, point: str, hit: int = 1) -> "ChaosInjector":
        """Crash on the *hit*-th arrival at *point* (1 = next arrival)."""
        if hit < 1:
            raise ValueError("hit counts from 1")
        with self._lock:
            self._crash_points[point] = hit
        return self

    def fail_at(
        self,
        point: str,
        on: int | Iterable[int] = 1,
        error: Optional[BaseException] = None,
    ) -> "ChaosInjector":
        """Raise *error* on the given absolute arrival number(s) at *point*.

        *error* defaults to a fresh :class:`InjectedFault`; pass e.g.
        ``OSError("...")`` for points whose handlers only catch socket
        errors.
        """
        with self._lock:
            slot = self._failures.setdefault(point, {})
            for arrival in _as_arrivals(on):
                slot[arrival] = error if error is not None else InjectedFault(point)
        return self

    def delay_at(
        self, point: str, seconds: float, on: int | Iterable[int] = 1
    ) -> "ChaosInjector":
        """Sleep *seconds* on the given absolute arrival number(s) at *point*."""
        with self._lock:
            slot = self._delays.setdefault(point, {})
            for arrival in _as_arrivals(on):
                slot[arrival] = seconds
        return self

    # -- instrumentation -------------------------------------------------------

    def hit(self, point: str) -> None:
        delay = None
        with self._lock:
            arrival = self._arrivals.get(point, 0) + 1
            self._arrivals[point] = arrival
            self.hits.append(point)
            remaining = self._crash_points.get(point)
            if remaining is not None:
                if remaining > 1:
                    self._crash_points[point] = remaining - 1
                else:
                    del self._crash_points[point]
                    self.crashed_at = point
                    raise SimulatedCrash(point)
            failures = self._failures.get(point)
            if failures is not None:
                error = failures.pop(arrival, None)
                if error is not None:
                    raise error
            delays = self._delays.get(point)
            if delays is not None:
                delay = delays.pop(arrival, None)
        if delay:
            time.sleep(delay)

    def arrivals(self, point: str) -> int:
        """Total arrivals observed at *point*."""
        with self._lock:
            return self._arrivals.get(point, 0)


class _NullChaos(ChaosInjector):
    """The production no-op injector: a point costs one method call and
    nothing can be armed — arming it is a programming error."""

    def crash_at(self, point: str, hit: int = 1):  # pragma: no cover
        raise RuntimeError("arm a dedicated ChaosInjector, not NULL_FAULTS")

    def fail_at(self, point, on=1, error=None):  # pragma: no cover
        raise RuntimeError("arm a dedicated ChaosInjector, not NULL_FAULTS")

    def delay_at(self, point, seconds, on=1):  # pragma: no cover
        raise RuntimeError("arm a dedicated ChaosInjector, not NULL_FAULTS")

    def hit(self, point: str) -> None:
        return None


#: Shared no-op injector used whenever no chaos is requested.
NULL_FAULTS = _NullChaos()


#: The event-tier chaos points, roughly in the order an event meets them.
#: Points marked ``:<unit>`` are qualified with the receiving principal's
#: name at runtime, so schedules can target one unit deterministically.
#: docs/ROBUSTNESS.md renders this as the chaos-point matrix; the
#: supervision property suite iterates the engine rows.
EVENT_CHAOS_POINTS = (
    "broker.publish",                # publish accepted into the broker
    "broker.dispatch",               # threaded dispatcher picks the event up
    "engine.deliver:<unit>",         # matched + cleared, handed to lane/callback
    "lane.execute:<unit>",           # lane task claimed by a worker (laned only)
    "engine.callback.before:<unit>", # about to enter LabelContext + jail
    "engine.callback.after:<unit>",  # callback returned, delivery not yet acked
    "bridge.connect",                # bridge (re)connecting its STOMP client
    "bridge.send",                   # bridge sender thread transmitting an event
    "stomp.client.flush",            # client listener flushing a frame to the socket
    "federation.export",             # gateway exporting the regional aggregate
    "federation.import",             # gateway importing a foreign aggregate
)
