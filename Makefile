PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: help test test-unit test-security test-cluster bench-smoke bench-broker bench-taint bench-storage bench-durability bench-web bench-pipeline bench-supervision bench-cluster bench docs-check lint-ifc typecheck

## Show every target with its description.
help:
	@awk '/^## /{desc=substr($$0,4); next} /^[A-Za-z0-9_.-]+:/{if (desc) printf "  %-14s %s\n", substr($$1,1,length($$1)-1), desc; desc=""}' $(MAKEFILE_LIST)

## Tier-1: the full suite (unit + property + integration + benchmark smoke).
test: docs-check lint-ifc
	$(PYTHON) -m pytest -x -q

## Static IFC/taint/lock-order analysis; fails on any finding in src/.
lint-ifc:
	$(PYTHON) scripts/analyze.py src/repro

## mypy over the strict-typed packages (skips cleanly if mypy is absent).
typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy --config-file mypy.ini src/repro/core src/repro/taint \
		|| echo "mypy not installed; skipping typecheck (CI runs it)"

## Fast feedback: unit and property tests only.
test-unit:
	$(PYTHON) -m pytest tests/unit tests/property -q

## The adversarial vulnerability corpus (both-direction security matrix).
test-security:
	$(PYTHON) -m pytest tests/security -q

## The multi-process cluster engine: equivalence, chaos and deployment tests.
test-cluster:
	$(PYTHON) -m pytest tests/property/test_cluster_engine.py tests/integration/test_cluster_deployment.py -q

## Quick benchmark smoke: the broker ablation and throughput experiments.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_a1_broker_matching.py benchmarks/test_e4_throughput.py -q

## Broker perf snapshot: appends A1/E4 results to BENCH_broker.json.
bench-broker:
	$(PYTHON) scripts/bench_broker.py

## Taint perf snapshot: appends A2/E2 results to BENCH_taint.json.
bench-taint:
	$(PYTHON) scripts/bench_taint.py

## Storage perf snapshot: appends put/view/replicate results to BENCH_storage.json.
bench-storage:
	$(PYTHON) scripts/bench_storage.py

## Durability perf snapshot: appends durable-vs-memory put + recovery results to BENCH_storage.json.
bench-durability:
	$(PYTHON) scripts/bench_durability.py

## Web frontend perf snapshot: appends router/page/server results to BENCH_web.json.
bench-web:
	$(PYTHON) scripts/bench_web.py

## Engine perf snapshot: appends seed-vs-laned pipeline results to BENCH_pipeline.json.
bench-pipeline:
	$(PYTHON) scripts/bench_pipeline.py

## Supervision overhead snapshot: appends E4 off-vs-on results to BENCH_pipeline.json.
bench-supervision:
	$(PYTHON) scripts/bench_supervision.py

## Cluster engine snapshot: appends E4 at 1/2/4/8 workers to BENCH_cluster.json.
bench-cluster:
	$(PYTHON) scripts/bench_cluster.py

## Fail if docs/*.md reference modules, files or make targets that don't exist.
docs-check:
	$(PYTHON) scripts/docs_check.py

## The full paper benchmark suite (slow).
bench:
	$(PYTHON) -m pytest benchmarks -q
