PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-unit bench-smoke bench-broker bench-taint bench

## Tier-1: the full suite (unit + property + integration + benchmark smoke).
test:
	$(PYTHON) -m pytest -x -q

## Fast feedback: unit and property tests only.
test-unit:
	$(PYTHON) -m pytest tests/unit tests/property -q

## Quick benchmark smoke: the broker ablation and throughput experiments.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_a1_broker_matching.py benchmarks/test_e4_throughput.py -q

## Broker perf snapshot: appends A1/E4 results to BENCH_broker.json.
bench-broker:
	$(PYTHON) scripts/bench_broker.py

## Taint perf snapshot: appends A2/E2 results to BENCH_taint.json.
bench-taint:
	$(PYTHON) scripts/bench_taint.py

## The full paper benchmark suite (slow).
bench:
	$(PYTHON) -m pytest benchmarks -q
